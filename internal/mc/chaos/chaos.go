// Package chaos is the fault-injection harness for the mc engine's
// resilience layer. An Injector implements mc.FaultInjector and perturbs a
// run deterministically — panic on chosen shards, per-shard latency,
// cancel the run's context after K completions — so tests can assert the
// engine's recovery invariants (retry determinism, exact partial tallies,
// checkpoint/resume round trips) without real signals or real crashes.
//
// Everything the injector randomizes derives from its own seed via the
// engine's splitmix64 stream splitter, never from the experiment's RNG
// streams or the wall clock, so a chaos test is as reproducible as the
// run it disturbs.
//
// The injector fires before the checkpoint lookup inside the engine (the
// hook wraps the whole shard attempt), so on a resumed run it can panic on
// shards that a checkpoint would otherwise skip; resume tests normally
// uninstall the injector first, modelling a transient fault that does not
// recur.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hetarch/internal/mc"
)

// Injector is a deterministic mc.FaultInjector. The zero value injects
// nothing; configure it with the With/PanicOn methods before installing it
// via mc.SetFaultInjector. All methods are safe for concurrent use by the
// engine's workers.
type Injector struct {
	mu          sync.Mutex
	seed        int64
	panics      map[int]int // shard index -> remaining injected panics
	latency     time.Duration
	cancelAfter int
	cancel      context.CancelFunc
	completed   int
	injected    int
}

// New returns an injector whose random choices (PickShards, Cutpoint)
// derive from seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, panics: map[int]int{}}
}

// PanicOnShard arranges for the first `times` attempts of shard `index` to
// panic. times = 1 models a transient fault the engine's retry absorbs;
// times > the configured retry budget forces a clean run failure.
func (in *Injector) PanicOnShard(index, times int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.panics[index] = times
	return in
}

// PickShards deterministically selects count distinct shard indices out of
// [0, outOf) from the injector's seed — the "panic on random shards"
// chaos mode. It returns the chosen indices so the test can reason about
// them.
func (in *Injector) PickShards(count, outOf int) []int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if count > outOf {
		count = outOf
	}
	perm := rand.New(rand.NewSource(in.seed)).Perm(outOf)
	return perm[:count]
}

// Cutpoint deterministically picks a shard boundary in [1, outOf) from the
// injector's seed — the "kill at a random shard boundary" chaos mode.
func (in *Injector) Cutpoint(outOf int) int {
	if outOf <= 1 {
		return 1
	}
	return 1 + rand.New(rand.NewSource(in.seed^0x5ca1ab1e)).Intn(outOf-1)
}

// WithLatency adds a fixed sleep before every shard attempt, stretching
// the run so external interruptions (signals, deadlines) reliably land
// mid-run.
func (in *Injector) WithLatency(d time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.latency = d
	return in
}

// CancelAfter calls cancel once k shards have completed, simulating a kill
// at a shard boundary. With a single worker the completed set is exactly
// the first k shards; with more workers, in-flight shards may also finish.
func (in *Injector) CancelAfter(k int, cancel context.CancelFunc) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cancelAfter = k
	in.cancel = cancel
	return in
}

// InjectedFaults returns how many panics the injector has raised.
func (in *Injector) InjectedFaults() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// CompletedShards returns how many shard completions the injector has
// observed.
func (in *Injector) CompletedShards() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.completed
}

// BeforeShard implements mc.FaultInjector: it sleeps the configured
// latency, then panics if the shard still has injected faults pending.
func (in *Injector) BeforeShard(sh mc.Shard, attempt int) {
	in.mu.Lock()
	doPanic := false
	if n := in.panics[sh.Index]; n > 0 {
		in.panics[sh.Index] = n - 1
		in.injected++
		doPanic = true
	}
	d := in.latency
	in.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if doPanic {
		panic(fmt.Sprintf("chaos: injected fault on shard %d (attempt %d)", sh.Index, attempt))
	}
}

// ShardDone implements mc.FaultInjector: it counts the completion and
// fires the configured cancellation when the threshold is reached.
func (in *Injector) ShardDone(mc.Shard) {
	in.mu.Lock()
	in.completed++
	fire := in.cancel != nil && in.cancelAfter > 0 && in.completed >= in.cancelAfter
	cancel := in.cancel
	in.mu.Unlock()
	if fire {
		cancel()
	}
}
