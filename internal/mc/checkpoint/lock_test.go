package checkpoint

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestLockRefusesLiveHolder: a checkpoint whose lockfile names a live
// process (here: this test process) must refuse to open with ErrLocked and
// must not disturb the holder's lock.
func TestLockRefusesLiveHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	first, err := Open(path, meta())
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	defer first.Close()

	_, err = Open(path, meta())
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second open err = %v, want ErrLocked", err)
	}
	if _, serr := os.Stat(LockPath(path)); serr != nil {
		t.Fatalf("failed second open removed the holder's lock: %v", serr)
	}
}

// TestLockStaleTakeover: a lockfile owned by a dead pid — the crash-recovery
// case — is taken over silently, and a torn lockfile (crash mid-create) is
// treated the same.
func TestLockStaleTakeover(t *testing.T) {
	for name, payload := range map[string][]byte{
		"dead pid": mustJSON(t, lockInfo{PID: 1 << 30, RunID: "ghost"}),
		"torn":     []byte(`{"pid": 123`),
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck.jsonl")
			if err := os.WriteFile(LockPath(path), payload, 0o644); err != nil {
				t.Fatal(err)
			}
			cf, err := Open(path, meta())
			if err != nil {
				t.Fatalf("open over stale lock: %v", err)
			}
			var held lockInfo
			data, err := os.ReadFile(LockPath(path))
			if err != nil || json.Unmarshal(data, &held) != nil {
				t.Fatalf("lock not rewritten after takeover: %v (%s)", err, data)
			}
			if held.PID != os.Getpid() {
				t.Fatalf("lock pid = %d, want %d (ours)", held.PID, os.Getpid())
			}
			cf.Close()
		})
	}
}

// TestLockReleasedOnClose: Close must remove the lockfile so the next run
// (the resume) opens without a takeover.
func TestLockReleasedOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cf, err := Open(path, meta())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := os.Stat(LockPath(path)); !os.IsNotExist(err) {
		t.Fatalf("lock survived Close: stat err = %v", err)
	}
	// And a reopen is an ordinary resume, not a takeover.
	cf2, err := Open(path, meta())
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	cf2.Close()
}

// TestLockFailedOpenReleases: when Open fails after the lock is taken (here:
// a metadata mismatch with the existing file), the lock must not leak.
func TestLockFailedOpenReleases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cf, err := Open(path, meta())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	cf.Close()

	other := NewMeta("test", "unit", "quick", 8, 0) // different seed
	if _, err := Open(path, other); err == nil {
		t.Fatal("open with mismatched meta succeeded")
	}
	if _, err := os.Stat(LockPath(path)); !os.IsNotExist(err) {
		t.Fatalf("failed open leaked the lock: stat err = %v", err)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
