// Double-writer guard: a pid+run-ID lockfile beside the checkpoint JSONL.
// Two processes appending shard records to one file would interleave
// records from different run sequences — each line is valid JSON, but the
// union is a checkpoint of no run that ever happened. Open therefore takes
// an exclusive lockfile first and refuses a checkpoint held by a live
// process; a lock whose owner died (crash, OOM kill) is stale and is taken
// over so crash recovery never needs manual cleanup.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"syscall"
	"time"

	"hetarch/internal/obs/runlog"
)

var (
	evLockTakeover = runlog.Event("mc.checkpoint_lock_takeover")

	// ErrLocked reports a checkpoint held by a live run. Callers can match
	// it with errors.Is to distinguish "busy" from I/O failures.
	ErrLocked = errors.New("checkpoint: held by a live run")
)

// lockInfo is the lockfile's JSON payload.
type lockInfo struct {
	PID       int    `json:"pid"`
	RunID     string `json:"run_id,omitempty"`
	CreatedAt string `json:"created_at,omitempty"` // RFC3339
}

// LockPath returns the lockfile path guarding the checkpoint at path.
func LockPath(path string) string { return path + ".lock" }

// pidAlive reports whether a process with the given pid exists. On Unix,
// signal 0 probes existence without delivering anything; EPERM means the
// process exists but belongs to someone else — still alive.
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// acquireLock takes the exclusive lockfile beside path. A lockfile owned by
// a dead process (or unreadable — a torn write from a crash mid-create) is
// stale: it is removed and the acquisition retried once. A lockfile owned
// by a live process fails with ErrLocked.
func acquireLock(path, runID string) (lockPath string, err error) {
	lockPath = LockPath(path)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(lockPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			info := lockInfo{PID: os.Getpid(), RunID: runID, CreatedAt: time.Now().UTC().Format(time.RFC3339)}
			werr := json.NewEncoder(f).Encode(info)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				os.Remove(lockPath)
				return "", fmt.Errorf("checkpoint: write lock %s: %w", lockPath, werr)
			}
			return lockPath, nil
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("checkpoint: lock %s: %w", lockPath, err)
		}
		data, rerr := os.ReadFile(lockPath)
		var held lockInfo
		if rerr == nil && json.Unmarshal(data, &held) == nil && pidAlive(held.PID) {
			return "", fmt.Errorf("%w: %s (pid %d, run %s); if that run is gone, delete %s",
				ErrLocked, path, held.PID, held.RunID, lockPath)
		}
		// Stale (owner dead) or torn (unparseable): take it over.
		runlog.L().Warn(evLockTakeover, "path", path, "stale_pid", held.PID, "stale_run", held.RunID)
		if rerr := os.Remove(lockPath); rerr != nil && !os.IsNotExist(rerr) {
			return "", fmt.Errorf("checkpoint: remove stale lock %s: %w", lockPath, rerr)
		}
	}
	// Two takeover rounds lost the O_EXCL race both times: a live
	// contender owns the lock.
	return "", fmt.Errorf("%w: %s (lost lock race); retry, or delete %s if no run is live",
		ErrLocked, path, lockPath)
}
