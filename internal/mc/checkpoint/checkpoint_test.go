package checkpoint

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hetarch/internal/mc"
	"hetarch/internal/mc/chaos"
)

func testRunner() mc.ShardRunner {
	return func(sh mc.Shard) mc.Tally {
		rng := sh.RNG()
		var t mc.Tally
		for i := 0; i < sh.Shots; i++ {
			t.Shots++
			if rng.Float64() < 0.21 {
				t.Errors++
			}
		}
		return t
	}
}

// trackingRunner records which shard indices actually executed.
type tracker struct {
	mu  sync.Mutex
	ran map[int]int
}

func (tr *tracker) runner() mc.ShardRunner {
	inner := testRunner()
	return func(sh mc.Shard) mc.Tally {
		tr.mu.Lock()
		if tr.ran == nil {
			tr.ran = map[int]int{}
		}
		tr.ran[sh.Index]++
		tr.mu.Unlock()
		return inner(sh)
	}
}

func meta() Meta { return NewMeta("test", "unit", "quick", 7, 0) }

// TestChaosResumeRoundTripBitIdentical is the acceptance invariant: kill a
// run at a (seed-chosen) random shard boundary, resume from the
// checkpoint, and the pooled counts must be bit-identical to an
// uninterrupted run — without re-executing any completed shard.
func TestChaosResumeRoundTripBitIdentical(t *testing.T) {
	cfg := mc.Config{Shots: 10_000, Seed: 7, Workers: 1}
	want := mc.Run(cfg, testRunner)
	numShards := (cfg.Shots + mc.DefaultShardSize - 1) / mc.DefaultShardSize

	for _, chaosSeed := range []int64{1, 2, 3, 99} {
		path := filepath.Join(t.TempDir(), "ck.jsonl")

		// Interrupted run: cancel at a random shard boundary.
		in := chaos.New(chaosSeed)
		k := in.Cutpoint(numShards)
		ctx, cancel := context.WithCancel(context.Background())
		in.CancelAfter(k, cancel)

		cp, err := Open(path, meta())
		if err != nil {
			t.Fatal(err)
		}
		mc.SetCheckpoint(cp)
		mc.SetFaultInjector(in)
		partial, err := mc.RunContext(ctx, cfg, testRunner)
		mc.SetFaultInjector(nil)
		mc.SetCheckpoint(nil)
		cancel()
		cp.Close()

		var pe *mc.PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("chaos=%d: want PartialError, got %v", chaosSeed, err)
		}
		if partial.Shots >= want.Shots {
			t.Fatalf("chaos=%d: interruption did not interrupt (k=%d)", chaosSeed, k)
		}

		// Resume: same config, same checkpoint; completed shards must not
		// re-execute and the final tally must match bit for bit.
		cp2, err := Open(path, meta())
		if err != nil {
			t.Fatal(err)
		}
		if cp2.Resumed() != len(pe.Completed) {
			t.Fatalf("chaos=%d: resumed %d shards, interrupted run completed %d", chaosSeed, cp2.Resumed(), len(pe.Completed))
		}
		tr := &tracker{}
		mc.SetCheckpoint(cp2)
		got, err := mc.RunContext(context.Background(), cfg, tr.runner)
		mc.SetCheckpoint(nil)
		cp2.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("chaos=%d: resumed tally %+v != uninterrupted %+v", chaosSeed, got, want)
		}
		for _, i := range pe.Completed {
			if n := tr.ran[i]; n != 0 {
				t.Fatalf("chaos=%d: resumed run re-executed completed shard %d (%d times)", chaosSeed, i, n)
			}
		}
		if len(tr.ran) != numShards-len(pe.Completed) {
			t.Fatalf("chaos=%d: executed %d shards, want %d", chaosSeed, len(tr.ran), numShards-len(pe.Completed))
		}
	}
}

// TestChaosResumeAcrossWorkerCounts: interrupt at 8 workers, resume at 1
// and at 4 — worker count must stay a pure throughput knob through the
// checkpoint path.
func TestChaosResumeAcrossWorkerCounts(t *testing.T) {
	cfg := mc.Config{Shots: 20_000, Seed: 11, Workers: 8}
	want := mc.Run(cfg, testRunner)
	path := filepath.Join(t.TempDir(), "ck.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	in := chaos.New(4).CancelAfter(10, cancel)
	cp, err := Open(path, meta())
	if err != nil {
		t.Fatal(err)
	}
	mc.SetCheckpoint(cp)
	mc.SetFaultInjector(in)
	if _, err := mc.RunContext(ctx, cfg, testRunner); err == nil {
		t.Fatal("expected interruption")
	}
	mc.SetFaultInjector(nil)
	mc.SetCheckpoint(nil)
	cancel()
	cp.Close()

	for _, w := range []int{1, 4} {
		cp, err := Open(path, meta())
		if err != nil {
			t.Fatal(err)
		}
		mc.SetCheckpoint(cp)
		c := cfg
		c.Workers = w
		got, err := mc.RunContext(context.Background(), c, testRunner)
		mc.SetCheckpoint(nil)
		cp.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: resumed %+v != uninterrupted %+v", w, got, want)
		}
	}
}

// TestChaosResumeUnderShardPanics: a resume disturbed by fresh transient
// panics still converges to the exact fault-free counts.
func TestChaosResumeUnderShardPanics(t *testing.T) {
	cfg := mc.Config{Shots: 10_000, Seed: 3, Workers: 4}
	want := mc.Run(cfg, testRunner)
	path := filepath.Join(t.TempDir(), "ck.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	in := chaos.New(8).CancelAfter(12, cancel)
	cp, _ := Open(path, meta())
	mc.SetCheckpoint(cp)
	mc.SetFaultInjector(in)
	mc.RunContext(ctx, cfg, testRunner)
	mc.SetFaultInjector(nil)
	mc.SetCheckpoint(nil)
	cancel()
	cp.Close()

	// Resume with transient panics on three random shards.
	in2 := chaos.New(21)
	for _, s := range in2.PickShards(3, 40) {
		in2.PanicOnShard(s, 1)
	}
	cp2, err := Open(path, meta())
	if err != nil {
		t.Fatal(err)
	}
	mc.SetCheckpoint(cp2)
	mc.SetFaultInjector(in2)
	got, err := mc.RunContext(context.Background(), cfg, testRunner)
	mc.SetFaultInjector(nil)
	mc.SetCheckpoint(nil)
	cp2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("chaotic resume %+v != fault-free %+v", got, want)
	}
}

// TestTruncatedTailDropped: a checkpoint killed mid-write loses only the
// torn record; Open drops the tail, rewrites a clean file, and resumes.
func TestTruncatedTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cfg := mc.Config{Shots: 2_560, Seed: 7, Workers: 1}
	want := mc.Run(cfg, testRunner)

	cp, err := Open(path, meta())
	if err != nil {
		t.Fatal(err)
	}
	mc.SetCheckpoint(cp)
	if _, err := mc.RunContext(context.Background(), cfg, testRunner); err != nil {
		t.Fatal(err)
	}
	mc.SetCheckpoint(nil)
	cp.Close()

	// Tear the final record mid-line, as a kill during the write would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	cp2, err := Open(path, meta())
	if err != nil {
		t.Fatalf("truncated checkpoint must open: %v", err)
	}
	if cp2.Resumed() != 9 { // 10 shards recorded, last one torn
		t.Fatalf("resumed %d shards from torn file, want 9", cp2.Resumed())
	}
	mc.SetCheckpoint(cp2)
	got, err := mc.RunContext(context.Background(), cfg, testRunner)
	mc.SetCheckpoint(nil)
	cp2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resume after torn tail %+v != %+v", got, want)
	}
}

// TestOpenRejectsMismatchedRun: a checkpoint from a different experiment,
// seed, scale, shot budget, or revision must be refused, not spliced.
func TestOpenRejectsMismatchedRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cp, err := Open(path, meta())
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()

	mutations := map[string]func(*Meta){
		"experiment": func(m *Meta) { m.Experiment = "other" },
		"scale":      func(m *Meta) { m.Scale = "full" },
		"seed":       func(m *Meta) { m.Seed = 8 },
		"shots":      func(m *Meta) { m.Shots = 123 },
		"shard size": func(m *Meta) { m.ShardSize = 64 },
	}
	for name, mutate := range mutations {
		m := meta()
		mutate(&m)
		if _, err := Open(path, m); err == nil {
			t.Errorf("%s mismatch accepted", name)
		} else if !strings.Contains(err.Error(), "different run") {
			t.Errorf("%s: unhelpful error: %v", name, err)
		}
	}

	// Matching meta still opens.
	cp2, err := Open(path, meta())
	if err != nil {
		t.Fatal(err)
	}
	cp2.Close()
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	if err := os.WriteFile(path, []byte(`{"type":"header","tool":"hetarch"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, meta()); err == nil {
		t.Fatal("recorder artifact accepted as a checkpoint")
	}
}

func TestLookupGuardsShardSeed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	cp, err := Open(path, meta())
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	key := mc.RunKey{Run: 0, Shots: 100, Seed: 7, ShardSize: 256}
	sh := mc.Shard{Index: 0, Shots: 100, Seed: mc.StreamSeed(7, 0)}
	if err := cp.Record(key, sh, mc.Tally{Shots: 100, Errors: 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok := cp.Lookup(key, sh); !ok {
		t.Fatal("recorded shard not found")
	}
	wrong := sh
	wrong.Seed++
	if _, ok := cp.Lookup(key, wrong); ok {
		t.Fatal("lookup must miss on a stream-seed mismatch")
	}
	if _, ok := cp.Lookup(mc.RunKey{Run: 1, Shots: 100, Seed: 7, ShardSize: 256}, sh); ok {
		t.Fatal("lookup must miss on a run-key mismatch")
	}
}
