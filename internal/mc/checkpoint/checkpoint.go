// Package checkpoint persists the mc engine's per-shard tallies to a
// crash-tolerant JSONL file so an interrupted Monte Carlo campaign can
// resume without repeating completed work.
//
// The artifact is line-oriented, one JSON object per line, flushed per
// record — the flight recorder's discipline (see internal/obs/recorder):
// killing the process at any point loses at most the line being written,
// and the reader drops a torn trailing line instead of failing.
//
//	{"type":"checkpoint", ...}   exactly one, first line: the run identity
//	{"type":"shard", ...}        one per completed shard
//
// A checkpoint is only valid for the exact run that produced it: the meta
// line records the experiment, scale, seed, shot override, shard size, and
// git revision, and Open refuses a file whose identity does not match —
// resuming under different parameters would silently splice incompatible
// streams. Within a run, shards are keyed by the engine's RunKey (run
// sequence number, shots, seed, shard size) plus the shard index, and each
// record carries the shard's stream seed as a final guard: a lookup whose
// seed disagrees is treated as a miss.
//
// Because the engine's shard decomposition is deterministic and a
// completed shard's tally is independent of scheduling, a resumed run that
// skips the recorded shards produces pooled counts bit-identical to an
// uninterrupted run at any worker count.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"hetarch/internal/mc"
	"hetarch/internal/obs/recorder"
	"hetarch/internal/obs/runlog"
)

// Structured-log events (no-ops until the CLI installs a run logger).
var evTornTail = runlog.Event("mc.checkpoint_torn_tail")

// Meta identifies the run a checkpoint belongs to. Every field that
// changes the shard decomposition or the sampled streams participates in
// the compatibility check.
type Meta struct {
	Type string `json:"type"` // "checkpoint"
	// RunID is the ledger run identity of the invocation that created the
	// checkpoint. It is provenance, not identity: a resumed run mints a new
	// run ID but may adopt a checkpoint from an earlier one, so RunID is
	// deliberately excluded from the compatibility check. The resuming
	// run's ledger envelope records it as resumed_from.
	RunID       string `json:"run_id,omitempty"`
	Tool        string `json:"tool,omitempty"`
	Experiment  string `json:"experiment"`
	Scale       string `json:"scale,omitempty"` // "quick" or "full"
	Seed        int64  `json:"seed"`
	Shots       int    `json:"shots,omitempty"` // CLI -shots override; 0 = scale default
	ShardSize   int    `json:"shard_size"`
	GitRevision string `json:"git_revision,omitempty"`
	CreatedAt   string `json:"created_at,omitempty"` // RFC3339
}

// NewMeta fills a Meta for the current build: shard size from the engine
// default, git revision from debug.ReadBuildInfo when available.
func NewMeta(tool, experiment, scale string, seed int64, shots int) Meta {
	m := Meta{
		Type:       "checkpoint",
		Tool:       tool,
		Experiment: experiment,
		Scale:      scale,
		Seed:       seed,
		Shots:      shots,
		ShardSize:  mc.DefaultShardSize,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				m.GitRevision = s.Value
			}
		}
	}
	return m
}

// compatible reports whether a checkpoint written under prev can be
// resumed by a run described by cur.
func compatible(prev, cur Meta) error {
	switch {
	case prev.Experiment != cur.Experiment:
		return fmt.Errorf("experiment %q != %q", prev.Experiment, cur.Experiment)
	case prev.Scale != cur.Scale:
		return fmt.Errorf("scale %q != %q", prev.Scale, cur.Scale)
	case prev.Seed != cur.Seed:
		return fmt.Errorf("seed %d != %d", prev.Seed, cur.Seed)
	case prev.Shots != cur.Shots:
		return fmt.Errorf("shots %d != %d", prev.Shots, cur.Shots)
	case prev.ShardSize != cur.ShardSize:
		return fmt.Errorf("shard size %d != %d", prev.ShardSize, cur.ShardSize)
	case prev.GitRevision != "" && cur.GitRevision != "" && prev.GitRevision != cur.GitRevision:
		return fmt.Errorf("git revision %.12s != %.12s", prev.GitRevision, cur.GitRevision)
	}
	return nil
}

// shardRecord is one completed shard on disk.
type shardRecord struct {
	Type      string `json:"type"` // "shard"
	Run       int    `json:"run"`
	RunShots  int    `json:"run_shots"`
	RunSeed   int64  `json:"run_seed"`
	ShardSize int    `json:"shard_size"`
	Shard     int    `json:"shard"`
	ShardSeed int64  `json:"shard_seed"`
	Shots     int64  `json:"shots"`
	Errors    int64  `json:"errors"`
}

type entryKey struct {
	key   mc.RunKey
	shard int
}

type entryVal struct {
	seed  int64
	tally mc.Tally
}

// File is an open checkpoint store. It implements mc.Checkpoint; install
// it with mc.SetCheckpoint. Methods are safe for concurrent use by the
// engine's workers; every Record is flushed to the OS before returning.
type File struct {
	mu       sync.Mutex
	f        *os.File
	enc      *json.Encoder
	meta     Meta
	done     map[entryKey]entryVal
	resumed  int
	closed   bool
	lockPath string
}

// Open loads the checkpoint at path, validating that it belongs to the run
// described by meta, or creates a fresh one if the file does not exist.
// A crash-truncated trailing line is dropped (and the file rewritten
// without it so subsequent appends start on a clean line boundary).
//
// Open first takes a pid+run-ID lockfile beside the JSONL (see lock.go):
// a checkpoint held by a live run fails with ErrLocked so two processes
// can never interleave shard records, while a lock left by a dead process
// is taken over silently. Close releases the lock.
func Open(path string, meta Meta) (*File, error) {
	meta.Type = "checkpoint"
	lockPath, err := acquireLock(path, meta.RunID)
	if err != nil {
		return nil, err
	}
	cf, err := open(path, meta)
	if err != nil {
		os.Remove(lockPath)
		return nil, err
	}
	cf.lockPath = lockPath
	return cf, nil
}

func open(path string, meta Meta) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return create(path, meta)
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}

	lines, tail := recorder.SplitTailTolerant(data)
	truncated := len(tail) > 0
	if truncated && json.Valid(tail) {
		lines = append(lines, tail)
	}
	if len(lines) == 0 {
		return create(path, meta)
	}

	var prev Meta
	if err := json.Unmarshal(lines[0], &prev); err != nil || prev.Type != "checkpoint" {
		return nil, fmt.Errorf("checkpoint %s: first record is not a checkpoint header", path)
	}
	if err := compatible(prev, meta); err != nil {
		return nil, fmt.Errorf("checkpoint %s was written by a different run (%v); delete it or rerun with matching flags", path, err)
	}

	done := map[entryKey]entryVal{}
	for i, raw := range lines[1:] {
		if len(raw) == 0 {
			continue
		}
		var rec shardRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("checkpoint %s: line %d: %w", path, i+2, err)
		}
		if rec.Type != "shard" {
			continue // forward compatibility
		}
		k := entryKey{mc.RunKey{Run: rec.Run, Shots: rec.RunShots, Seed: rec.RunSeed, ShardSize: rec.ShardSize}, rec.Shard}
		done[k] = entryVal{seed: rec.ShardSeed, tally: mc.Tally{Shots: rec.Shots, Errors: rec.Errors}}
	}

	if truncated {
		// Rewrite without the torn tail so appends start on a line boundary.
		runlog.L().Warn(evTornTail, "path", path, "shards", len(done))
		if err := rewrite(path, prev, done); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &File{f: f, enc: json.NewEncoder(f), meta: prev, done: done, resumed: len(done)}, nil
}

func create(path string, meta Meta) (*File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	cf := &File{f: f, enc: json.NewEncoder(f), meta: meta, done: map[entryKey]entryVal{}}
	if err := cf.enc.Encode(meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return cf, nil
}

// rewrite replaces path with a clean artifact holding meta plus the loaded
// shard records, via tmp-and-rename.
func rewrite(path string, meta Meta, done map[entryKey]entryVal) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	enc := json.NewEncoder(f)
	err = enc.Encode(meta)
	for k, v := range done {
		if err != nil {
			break
		}
		err = enc.Encode(record(k, v))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

func record(k entryKey, v entryVal) shardRecord {
	return shardRecord{
		Type:      "shard",
		Run:       k.key.Run,
		RunShots:  k.key.Shots,
		RunSeed:   k.key.Seed,
		ShardSize: k.key.ShardSize,
		Shard:     k.shard,
		ShardSeed: v.seed,
		Shots:     v.tally.Shots,
		Errors:    v.tally.Errors,
	}
}

// Meta returns the identity the checkpoint was created under. For a
// resumed file this is the original producer's meta — its RunID is the
// run that started the campaign, which the resuming run records as its
// ledger resumed_from.
func (f *File) Meta() Meta {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.meta
}

// Resumed returns the number of shard tallies loaded from a pre-existing
// file — zero for a fresh checkpoint.
func (f *File) Resumed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resumed
}

// Len returns the number of shard tallies currently recorded.
func (f *File) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.done)
}

// Lookup implements mc.Checkpoint: it returns the recorded tally of the
// shard, guarding on the shard's stream seed.
func (f *File) Lookup(key mc.RunKey, sh mc.Shard) (mc.Tally, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.done[entryKey{key, sh.Index}]
	if !ok || v.seed != sh.Seed {
		return mc.Tally{}, false
	}
	return v.tally, true
}

// Record implements mc.Checkpoint: it appends the shard's tally and
// flushes it to the OS before returning, so a kill after Record cannot
// lose the shard. Re-recording an already-present shard is a no-op.
func (f *File) Record(key mc.RunKey, sh mc.Shard, t mc.Tally) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return fmt.Errorf("checkpoint: closed")
	}
	k := entryKey{key, sh.Index}
	if _, ok := f.done[k]; ok {
		return nil
	}
	if err := f.enc.Encode(record(k, entryVal{seed: sh.Seed, tally: t})); err != nil {
		return err
	}
	f.done[k] = entryVal{seed: sh.Seed, tally: t}
	return nil
}

// Close closes the file and releases the double-writer lock. Records
// already written are durable; Close exists to release the handle and the
// lock, not to finalize.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	f.closed = true
	err := f.f.Close()
	if f.lockPath != "" {
		os.Remove(f.lockPath)
	}
	return err
}
