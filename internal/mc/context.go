// Resilient execution layer of the mc engine: context-aware dispatch,
// per-shard panic isolation with bounded same-stream retries, and the
// process-wide checkpoint and fault-injection hooks.
//
// The layer exploits the engine's deterministic shard decomposition: a
// cancelled or faulted run still returns the pooled tally of every shard
// that DID complete, identified by index in a typed *PartialError, and a
// completed shard's tally is exactly what an uninterrupted run would have
// produced for that index. That is what makes checkpoint/resume exact:
// re-running the same (shots, seed, shard size) while skipping the
// completed set yields bit-identical pooled counts.
package mc

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hetarch/internal/obs"
	"hetarch/internal/obs/runlog"
	"hetarch/internal/obs/trace"
)

// Structured-log events (no-ops until the CLI installs a run logger).
var (
	evShardFault = runlog.Event("mc.shard_fault")
	evShardRetry = runlog.Event("mc.shard_retry")
)

// Engine telemetry: faults count recovered worker panics (one per failed
// attempt), retries the re-executions they trigger, hits the shards a
// checkpoint satisfied without execution. The histograms break a run's
// wall time down per shard — shard_wall_ns is time spent executing,
// shard_queue_wait_ns the time a shard sat dispatched-but-unclaimed —
// and worker_utilization is the fraction of the pool's wall-clock budget
// (run wall x workers) spent executing shards: the gap between it and
// 1.0 is queueing, merge, and scheduler overhead.
var (
	shardFaults    = obs.C("mc.shard_faults")
	shardRetries   = obs.C("mc.shard_retries")
	checkpointHits = obs.C("mc.checkpoint_hits")
	shardWall      = obs.H("mc.shard_wall_ns")
	shardWait      = obs.H("mc.shard_queue_wait_ns")
	workerUtil     = obs.G("mc.worker_utilization")
)

// DefaultShardRetries is the number of same-stream re-executions a
// panicking shard gets before the run fails cleanly. One retry absorbs
// transient faults (the chaos injector's model) while keeping a
// deterministic crash from looping: the retry reruns the identical shard
// seed, so a panic that is a pure function of the shard's work fires again
// and surfaces as a *ShardFault.
const DefaultShardRetries = 1

// shardRetries resolves Config.MaxShardRetries: 0 means the default,
// negative disables retries.
func (c Config) shardRetries() int {
	if c.MaxShardRetries < 0 {
		return 0
	}
	if c.MaxShardRetries == 0 {
		return DefaultShardRetries
	}
	return c.MaxShardRetries
}

// ShardFault reports a shard whose runner panicked on every attempt. The
// engine recovers the panic on the worker goroutine, captures the stack,
// and fails the run cleanly instead of crashing the process — completed
// shards stay usable (and checkpointed).
type ShardFault struct {
	Shard    int    // shard index within the run
	Seed     int64  // the shard's stream seed (rerunning it reproduces the fault)
	Attempts int    // executions performed, including retries
	Value    any    // the recovered panic value
	Stack    []byte // stack captured at the final panic
}

func (f *ShardFault) Error() string {
	return fmt.Sprintf("mc: shard %d (stream seed %d) panicked after %d attempt(s): %v",
		f.Shard, f.Seed, f.Attempts, f.Value)
}

// PartialError reports a run that stopped before completing every shard —
// cancelled, past its deadline, faulted, or unable to record a checkpoint.
// The run's partial result covers exactly the Completed shard indices.
// Unwrap exposes the cause, so errors.Is(err, context.Canceled) and
// errors.As(err, &fault) both work.
type PartialError struct {
	Cause     error // context error, *ShardFault, or checkpoint I/O error
	Completed []int // sorted indices of shards that finished (or were resumed)
	Shards    int   // total shards in the decomposition
	ShotsDone int64 // shots covered by the completed shards
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("mc: run interrupted after %d/%d shards (%d shots): %v",
		len(e.Completed), e.Shards, e.ShotsDone, e.Cause)
}

func (e *PartialError) Unwrap() error { return e.Cause }

// FaultInjector is the chaos-testing hook: when installed via
// SetFaultInjector, BeforeShard runs on the worker goroutine before every
// shard attempt (it may sleep or panic — a panic is recovered and retried
// like any shard fault) and ShardDone after every successful completion
// (where it may cancel the run's context to simulate a mid-run kill).
type FaultInjector interface {
	BeforeShard(sh Shard, attempt int)
	ShardDone(sh Shard)
}

// Checkpoint persists per-shard tallies so an interrupted run can resume.
// Lookup returns the recorded tally of a completed shard (a hit skips
// execution entirely); Record is called once per newly completed shard,
// from the worker goroutine, and must be durable when it returns.
type Checkpoint interface {
	Lookup(key RunKey, sh Shard) (Tally, bool)
	Record(key RunKey, sh Shard, t Tally) error
}

// RunKey identifies one RunContext invocation within a process. Runs are
// numbered by a process-wide sequence counter: experiment code executes its
// sub-runs in a deterministic order, so the same (Run, Shots, Seed,
// ShardSize) tuple names the same sub-run across an interrupt/resume pair.
type RunKey struct {
	Run       int   `json:"run"`
	Shots     int   `json:"shots"`
	Seed      int64 `json:"seed"`
	ShardSize int   `json:"shard_size"`
}

var (
	hookMu    sync.Mutex
	ckptStore Checkpoint
	injector  FaultInjector
	runSeq    atomic.Int64
)

// SetCheckpoint installs (nil removes) the process-wide checkpoint store
// consulted by every RunContext call, and resets the run-sequence counter
// so a resuming process numbers its runs identically to the interrupted
// one. Call it before the experiment starts, never mid-run.
//
// A process that runs a single experiment at a time (the CLI) can use this
// global hook; a process multiplexing several experiments concurrently
// (the hetarchd job service) must give each its own store via
// WithCheckpoint, which also scopes the run-sequence numbering.
func SetCheckpoint(c Checkpoint) {
	hookMu.Lock()
	ckptStore = c
	hookMu.Unlock()
	runSeq.Store(0)
}

// ckptScope is a context-scoped checkpoint binding: the store plus its own
// run-sequence counter, so two experiments running concurrently in one
// process each number their sub-runs 0, 1, 2, ... exactly as a solo run
// would — the property that makes a job's checkpoint resumable regardless
// of what else the process was executing at the time.
type ckptScope struct {
	cp  Checkpoint
	seq atomic.Int64
}

type ckptScopeKey struct{}

// WithCheckpoint returns a context that binds every RunContext call under
// it to its own checkpoint store and run-sequence counter, overriding the
// process-global SetCheckpoint hook. Unlike SetCheckpoint it is safe for
// any number of concurrent scopes: each scope numbers its runs
// independently from zero, in the deterministic order the experiment code
// issues them. A nil store yields a scope that checkpoints nothing (but
// still isolates run numbering).
func WithCheckpoint(ctx context.Context, cp Checkpoint) context.Context {
	return context.WithValue(ctx, ckptScopeKey{}, &ckptScope{cp: cp})
}

// checkpointScope returns the scope carried by ctx, or nil.
func checkpointScope(ctx context.Context) *ckptScope {
	s, _ := ctx.Value(ckptScopeKey{}).(*ckptScope)
	return s
}

// SetFaultInjector installs (nil removes) the chaos hook. Tests only.
func SetFaultInjector(fi FaultInjector) {
	hookMu.Lock()
	injector = fi
	hookMu.Unlock()
}

func currentHooks() (Checkpoint, FaultInjector) {
	hookMu.Lock()
	defer hookMu.Unlock()
	return ckptStore, injector
}

// runShard executes one shard attempt under recover, converting a worker
// panic (the runner's or an injected one) into a *ShardFault with the
// stack captured at the panic site.
func runShard[T any](run func(Shard) T, sh Shard, attempt int, fi FaultInjector) (val T, fault *ShardFault) {
	defer func() {
		if r := recover(); r != nil {
			shardFaults.Inc()
			runlog.L().Warn(evShardFault, "shard", sh.Index, "seed", sh.Seed, "attempt", attempt, "panic", fmt.Sprint(r))
			fault = &ShardFault{Shard: sh.Index, Seed: sh.Seed, Value: r, Stack: debug.Stack()}
		}
	}()
	if fi != nil {
		fi.BeforeShard(sh, attempt)
	}
	val = run(sh)
	return
}

// MapShardsContext is MapShards with cooperative cancellation and panic
// isolation. It stops dispatching shards once ctx is cancelled or a shard
// exhausts its retries; in-flight shards finish (shards are small, so the
// latency is bounded by one shard of work per worker). On an incomplete
// run it returns the results slice — valid at exactly the completed
// indices — together with a *PartialError describing what finished and
// why the rest did not.
//
// A panicking shard is retried up to Config.MaxShardRetries times on a
// fresh worker (the panic may have left the old worker's state
// inconsistent), re-running the identical stream seed so a successful
// retry is bit-identical to an undisturbed execution.
func MapShardsContext[T any](ctx context.Context, cfg Config, newWorker func() func(Shard) T) ([]T, error) {
	shards := cfg.shards()
	if len(shards) == 0 {
		return nil, nil
	}
	out := make([]T, len(shards))
	done := make([]bool, len(shards))
	retries := cfg.shardRetries()
	_, fi := currentHooks()

	runCtx, stop := context.WithCancel(ctx)
	defer stop()
	var firstFault atomic.Pointer[ShardFault]

	// Flight telemetry: every shard feeds the wall/queue-wait histograms
	// and the busy-time accumulator behind mc.worker_utilization; sampled
	// shards additionally emit a trace event on their worker's lane. None
	// of it touches the shard's RNG stream, so results stay bit-identical
	// with tracing on or off.
	dispatchStart := time.Now()
	var busyNs atomic.Int64

	// process runs one shard to completion (with retries) on worker lane
	// `lane`, returning false when the shard faulted out and the run must
	// wind down. It owns the worker pointer so a retry can swap in a fresh
	// worker for itself and for the shards that goroutine processes
	// afterwards.
	process := func(lane int, run *func(Shard) T, sh Shard) bool {
		pickup := time.Now()
		wait := pickup.Sub(dispatchStart).Nanoseconds()
		shardWait.Observe(wait)
		sh.Lane = lane
		traced := trace.Sampled(sh.Index)
		var ts0 int64
		if traced {
			ts0 = trace.Now()
		}
		var last *ShardFault
		for attempt := 1; attempt <= 1+retries; attempt++ {
			if attempt > 1 {
				shardRetries.Inc()
				runlog.L().Info(evShardRetry, "shard", sh.Index, "seed", sh.Seed, "attempt", attempt)
				*run = newWorker()
			}
			v, fault := runShard(*run, sh, attempt, fi)
			if fault == nil {
				out[sh.Index] = v
				done[sh.Index] = true
				wall := time.Since(pickup).Nanoseconds()
				shardWall.Observe(wall)
				busyNs.Add(wall)
				if traced {
					trace.Emit(trace.Event{
						Name: fmt.Sprintf("shard %d", sh.Index), Cat: "mc.shard",
						Proc: "mc", Lane: lane, Phase: trace.PhaseComplete,
						TS: ts0, Dur: trace.Now() - ts0, Index: int64(sh.Index),
						Attrs: map[string]int64{"queue_wait_ns": wait, "shots": int64(sh.Shots), "attempts": int64(attempt)},
					})
				}
				if fi != nil {
					fi.ShardDone(sh)
				}
				return true
			}
			fault.Attempts = attempt
			last = fault
		}
		firstFault.CompareAndSwap(nil, last)
		stop()
		return false
	}

	workers := ResolveWorkers(cfg.Workers)
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		run := newWorker()
		for i := range shards {
			if runCtx.Err() != nil {
				break
			}
			if !process(0, &run, shards[i]) {
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(lane int) {
				defer wg.Done()
				run := newWorker()
				for runCtx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(shards) {
						return
					}
					if !process(lane, &run, shards[i]) {
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	if wallNs := time.Since(dispatchStart).Nanoseconds(); wallNs > 0 {
		workerUtil.Set(float64(busyNs.Load()) / (float64(wallNs) * float64(workers)))
	}

	completed := make([]int, 0, len(shards))
	var shotsDone int64
	for i, ok := range done {
		if ok {
			completed = append(completed, i)
			shotsDone += int64(shards[i].Shots)
		}
	}
	if len(completed) == len(shards) {
		return out, nil
	}
	var cause error
	if f := firstFault.Load(); f != nil {
		cause = f
	} else if err := ctx.Err(); err != nil {
		cause = err
	} else {
		cause = context.Canceled // unreachable: incomplete runs have a fault or a dead context
	}
	return out, &PartialError{Cause: cause, Completed: completed, Shards: len(shards), ShotsDone: shotsDone}
}

// mergeTraced wraps the shard-order tally fold in a trace span (lane 0 of
// the mc track) when the flight profiler is armed, so the merge phase is
// visible next to the shard executions it follows.
func mergeTraced(shards int, fold func()) {
	if !trace.Enabled() {
		fold()
		return
	}
	ts0 := trace.Now()
	fold()
	trace.Emit(trace.Event{
		Name: "merge", Cat: "mc.merge", Proc: "mc", Lane: 0, Phase: trace.PhaseComplete,
		TS: ts0, Dur: trace.Now() - ts0, Index: -1,
		Attrs: map[string]int64{"shards": int64(shards)},
	})
}

// RunContext is Run with cooperative cancellation, panic isolation, and
// checkpointing. It always returns the pooled tally of the shards that
// completed; when that is not all of them, the error is a *PartialError
// whose Completed set the tally covers.
//
// When a checkpoint store is installed (SetCheckpoint), each shard is
// looked up before execution — a hit reuses the recorded tally without
// re-sampling (obs counters do not re-tick for resumed shards) — and
// recorded durably after it completes, so killing the process at any shard
// boundary loses at most the in-flight shards.
func RunContext(ctx context.Context, cfg Config, newWorker func() ShardRunner) (Tally, error) {
	// A context-scoped Remote (the distributed sweep fabric) takes over the
	// whole run before any local run numbering or checkpoint activity: the
	// remote engine owns its own run-sequence counter so coordinator and
	// worker processes number their runs identically.
	if rem := RemoteFrom(ctx); rem != nil {
		return rem.RunTally(ctx, cfg, newWorker)
	}
	// A context-scoped checkpoint binding (WithCheckpoint) shadows the
	// process-global hook AND the global run-sequence counter: scoped runs
	// number themselves within their scope, so concurrent scopes cannot
	// perturb each other's checkpoint keys.
	var cp Checkpoint
	var runNo int
	if scope := checkpointScope(ctx); scope != nil {
		cp = scope.cp
		runNo = int(scope.seq.Add(1)) - 1
	} else {
		cp, _ = currentHooks()
		runNo = int(runSeq.Add(1)) - 1
	}
	key := RunKey{Run: runNo, Shots: cfg.Shots, Seed: cfg.Seed, ShardSize: cfg.shardSize()}

	runCtx := ctx
	build := newWorker
	var recordErr atomic.Pointer[error]
	if cp != nil {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		build = func() ShardRunner {
			run := newWorker()
			return func(sh Shard) Tally {
				if t, ok := cp.Lookup(key, sh); ok {
					checkpointHits.Inc()
					if trace.Sampled(sh.Index) {
						trace.Emit(trace.Event{
							Name: "checkpoint hit", Cat: "mc.checkpoint", Proc: "mc",
							Lane: sh.Lane, Phase: trace.PhaseInstant, TS: trace.Now(),
							Index: int64(sh.Index),
						})
					}
					return t
				}
				t := run(sh)
				if err := cp.Record(key, sh, t); err != nil {
					err = fmt.Errorf("mc: checkpoint record: %w", err)
					recordErr.CompareAndSwap(nil, &err)
					cancel() // stop dispatching: the store is not durable anymore
				}
				return t
			}
		}
	}

	out, err := MapShardsContext(runCtx, cfg, build)
	var total Tally
	if err == nil {
		mergeTraced(len(out), func() {
			for _, t := range out {
				total.Add(t)
			}
		})
		if rp := recordErr.Load(); rp != nil {
			// Every shard ran, but the last records may not be durable.
			return total, *rp
		}
		return total, nil
	}
	pe := err.(*PartialError)
	mergeTraced(len(pe.Completed), func() {
		for _, i := range pe.Completed {
			total.Add(out[i])
		}
	})
	if rp := recordErr.Load(); rp != nil {
		// The internal cancel fired because recording failed; surface the
		// I/O error as the cause rather than the synthetic context error.
		if _, isFault := pe.Cause.(*ShardFault); !isFault {
			pe.Cause = *rp
		}
	}
	return total, pe
}
