package mc

import (
	"math/rand"

	"hetarch/internal/splitmix"
)

// NewRand returns a *rand.Rand over a SplitMix64 source (internal/splitmix)
// seeded for the given stream. Reseeding it with rng.Seed(seed) is a single
// word store, so shard runners hold one per worker and re-point it at each
// shard:
//
//	rng := mc.NewRand(0)
//	return func(sh mc.Shard) mc.Tally {
//		rng.Seed(sh.Seed)
//		...
//	}
//
// Batch shard runners skip the *rand.Rand wrapper and hold a *splitmix.RNG
// directly, so the per-draw Float64 inlines into the sampling hot loop.
func NewRand(seed int64) *rand.Rand {
	return rand.New(splitmix.New(seed))
}
