package distill

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetarch/internal/cell"
	"hetarch/internal/device"
)

func TestWernerPair(t *testing.T) {
	p := NewWernerPair(0.9)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Fidelity()-0.9) > 1e-12 || math.Abs(p.Infidelity()-0.1) > 1e-12 {
		t.Fatal("fidelity accessors wrong")
	}
}

func TestWernerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWernerPair(1.5)
}

func TestDecohereMonotone(t *testing.T) {
	p := NewWernerPair(0.98)
	q := p.Decohere(10, 500, 500, 500, 500)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Fidelity() >= p.Fidelity() {
		t.Fatal("decoherence should reduce fidelity")
	}
	// Longer exposure decays further.
	r := p.Decohere(100, 500, 500, 500, 500)
	if r.Fidelity() >= q.Fidelity() {
		t.Fatal("longer idle should decay more")
	}
	// Longer-lived memory decays less.
	s := p.Decohere(10, 50000, 50000, 50000, 50000)
	if s.Fidelity() <= q.Fidelity() {
		t.Fatal("longer T should decay less")
	}
}

func TestDecohereApproachesMixed(t *testing.T) {
	p := NewWernerPair(1.0)
	q := p.Decohere(1e7, 100, 100, 100, 100)
	// Under the Pauli-twirled idle model the fully-decohered pair is the
	// maximally mixed state, fidelity 1/4 with every Bell state.
	if math.Abs(q.Fidelity()-0.25) > 1e-6 {
		t.Fatalf("asymptotic fidelity %v, want 0.25", q.Fidelity())
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecohereOneSided(t *testing.T) {
	p := NewWernerPair(0.99)
	both := p.Decohere(5, 500, 500, 500, 500)
	one := p.Decohere(5, 500, 500, -1, -1)
	if one.Fidelity() <= both.Fidelity() {
		t.Fatal("one-sided decoherence should be milder")
	}
}

func TestDEJMPSImprovesGoodPairs(t *testing.T) {
	a := NewWernerPair(0.9)
	out, pSucc := DEJMPS(a, a, 0)
	if pSucc <= 0.5 || pSucc > 1 {
		t.Fatalf("success probability %v", pSucc)
	}
	if out.Fidelity() <= 0.9 {
		t.Fatalf("DEJMPS should improve fidelity: %v", out.Fidelity())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDEJMPSKnownWernerFormula(t *testing.T) {
	// For Werner inputs the DEJMPS/BBPSSW recurrence is
	// F' = (F² + e²) / (F² + 2Fe + 5e²), e = (1−F)/3.
	for _, f := range []float64{0.6, 0.75, 0.9, 0.99} {
		e := (1 - f) / 3
		want := (f*f + e*e) / (f*f + 2*f*e + 5*e*e)
		out, _ := DEJMPS(NewWernerPair(f), NewWernerPair(f), 0)
		if math.Abs(out.Fidelity()-want) > 1e-12 {
			t.Fatalf("F=%v: got %v want %v", f, out.Fidelity(), want)
		}
	}
}

func TestDEJMPSMatchesExactSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randPair := func() Pair {
		// random Bell-diagonal with dominant Φ+
		var p Pair
		p.P[0] = 0.5 + 0.5*rng.Float64()
		rest := 1 - p.P[0]
		a := rng.Float64()
		b := rng.Float64() * (1 - a)
		p.P[1] = rest * a
		p.P[2] = rest * b
		p.P[3] = rest * (1 - a - b)
		return p
	}
	for i := 0; i < 25; i++ {
		a, b := randPair(), randPair()
		closed, pc := DEJMPS(a, b, 0)
		exact, pe := DEJMPSExact(a, b)
		if math.Abs(pc-pe) > 1e-9 {
			t.Fatalf("case %d: success prob closed %v vs exact %v (a=%v b=%v)", i, pc, pe, a, b)
		}
		for k := 0; k < 4; k++ {
			if math.Abs(closed.P[k]-exact.P[k]) > 1e-9 {
				t.Fatalf("case %d coeff %d: closed %v vs exact %v (a=%v b=%v)", i, k, closed.P[k], exact.P[k], a, b)
			}
		}
	}
}

func TestDEJMPSGateErrorPenalty(t *testing.T) {
	a := NewWernerPair(0.95)
	clean, _ := DEJMPS(a, a, 0)
	noisy, _ := DEJMPS(a, a, 0.01)
	if noisy.Fidelity() >= clean.Fidelity() {
		t.Fatal("gate error should reduce output fidelity")
	}
	if clean.Fidelity()-noisy.Fidelity() > 0.03 {
		t.Fatal("1% gate error should cost ~1.5% fidelity, not more")
	}
}

func TestPropertyDEJMPSOutputsValidPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Pair {
			var p Pair
			total := 0.0
			for k := 0; k < 4; k++ {
				p.P[k] = rng.Float64()
				total += p.P[k]
			}
			for k := 0; k < 4; k++ {
				p.P[k] /= total
			}
			return p
		}
		a, b := mk(), mk()
		out, pSucc := DEJMPS(a, b, 0)
		if pSucc == 0 {
			return true
		}
		return out.Validate() == nil && pSucc > 0 && pSucc <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func baseConfig(het bool) Config {
	cfg := DefaultConfig(12.5, het)
	cfg.Seed = 11
	cfg.GenRateKHz = 1000
	return cfg
}

func TestModuleRunsAndDistills(t *testing.T) {
	cfg := baseConfig(true)
	cfg.ConsumeAtThreshold = true
	m := NewModule(cfg)
	stats := m.Run(20000) // 20 ms
	if stats.Generated == 0 || stats.Stored == 0 {
		t.Fatal("source produced nothing")
	}
	if stats.Attempts == 0 || stats.Successes == 0 {
		t.Fatal("no distillation activity")
	}
	if stats.Delivered == 0 {
		t.Fatal("heterogeneous module should deliver threshold pairs at 1 MHz generation")
	}
	if stats.DeliveredRatePerSecond() <= 0 {
		t.Fatal("rate accounting broken")
	}
}

func TestModuleHeterogeneousBeatsHomogeneous(t *testing.T) {
	horizon := 30000.0
	het := NewModule(withConsume(baseConfig(true))).Run(horizon)
	hom := NewModule(withConsume(baseConfig(false))).Run(horizon)
	if het.Delivered <= hom.Delivered {
		t.Fatalf("heterogeneous (%d) should outdeliver homogeneous (%d)", het.Delivered, hom.Delivered)
	}
}

func withConsume(c Config) Config {
	c.ConsumeAtThreshold = true
	return c
}

func TestModuleLowRateHomogeneousStarves(t *testing.T) {
	// At 100 kHz generation the homogeneous module (Tc = 0.5 ms) cannot
	// reach the 99.5% target — pairs decay between arrivals (paper Fig. 4).
	cfg := withConsume(baseConfig(false))
	cfg.GenRateKHz = 100
	stats := NewModule(cfg).Run(50000)
	// The heterogeneous system still delivers.
	cfgHet := withConsume(baseConfig(true))
	cfgHet.GenRateKHz = 100
	statsHet := NewModule(cfgHet).Run(50000)
	if statsHet.Delivered == 0 {
		t.Fatal("heterogeneous module should still deliver at 100 kHz")
	}
	// Homogeneous output at 100 kHz is essentially starved: only rare
	// arrival bursts ever reach the target (paper: "fails to distill any
	// pairs to threshold fidelity").
	if stats.Delivered*20 > statsHet.Delivered {
		t.Fatalf("homogeneous delivered %d vs heterogeneous %d at 100 kHz; expected <5%%",
			stats.Delivered, statsHet.Delivered)
	}
}

func TestModuleTraceRecorded(t *testing.T) {
	cfg := baseConfig(true)
	cfg.TraceInterval = 1
	m := NewModule(cfg)
	stats := m.Run(100)
	if len(stats.Trace) < 90 {
		t.Fatalf("trace has %d points", len(stats.Trace))
	}
	if stats.Trace[0].BestInfidelity != 1 {
		t.Fatal("trace should start with empty output register")
	}
}

func TestModulePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := baseConfig(true)
	cfg.InputSlots = 1
	NewModule(cfg)
}

func TestModuleDeterministicForSeed(t *testing.T) {
	a := NewModule(withConsume(baseConfig(true))).Run(5000)
	b := NewModule(withConsume(baseConfig(true))).Run(5000)
	if a.Delivered != b.Delivered || a.Generated != b.Generated || a.Attempts != b.Attempts {
		t.Fatal("same seed should reproduce identical runs")
	}
}

func TestTwirlPreservesFidelity(t *testing.T) {
	p := Pair{P: [4]float64{0.9, 0.06, 0.03, 0.01}}
	w := p.Twirl()
	if math.Abs(w.Fidelity()-0.9) > 1e-12 {
		t.Fatal("twirl changed fidelity")
	}
	if math.Abs(w.P[1]-w.P[2]) > 1e-12 || math.Abs(w.P[2]-w.P[3]) > 1e-12 {
		t.Fatal("twirl output not Werner")
	}
}

func TestBBPSSWImproves(t *testing.T) {
	a := NewWernerPair(0.85)
	out, ps := BBPSSW(a, a, 0)
	if out.Fidelity() <= 0.85 || ps <= 0.5 {
		t.Fatalf("BBPSSW failed: F=%v ps=%v", out.Fidelity(), ps)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDEJMPSBeatsBBPSSW(t *testing.T) {
	// From equal Werner inputs, one round ties (DEJMPS = BBPSSW on Werner
	// states), but iterated from the same budget DEJMPS pulls ahead because
	// its outputs concentrate instead of being re-twirled.
	start := NewWernerPair(0.9)
	d, b := start, start
	for round := 0; round < 3; round++ {
		d, _ = DEJMPS(d, d, 0)
		b, _ = BBPSSW(b, b, 0)
	}
	if d.Fidelity() <= b.Fidelity() {
		t.Fatalf("DEJMPS (%v) should beat BBPSSW (%v) after 3 rounds", d.Fidelity(), b.Fidelity())
	}
}

func TestBBPSSWMatchesDEJMPSOnFirstWernerRound(t *testing.T) {
	a := NewWernerPair(0.87)
	d, pd := DEJMPS(a, a, 0)
	b, pb := BBPSSW(a, a, 0)
	if math.Abs(pd-pb) > 1e-12 {
		t.Fatal("success probabilities should match for Werner inputs")
	}
	if math.Abs(d.Fidelity()-b.Fidelity()) > 1e-12 {
		t.Fatal("first-round fidelities should match for Werner inputs")
	}
}

func TestConfigFromCells(t *testing.T) {
	reg := cell.NewRegister(device.StandardStorage(12500, 10), device.StandardComputeNoReadout(500), 1)
	regChar, err := cell.CharacterizeRegister(reg)
	if err != nil {
		t.Fatal(err)
	}
	pc := cell.NewParCheck(device.StandardComputeNoReadout(500), device.StandardCompute(500))
	pcChar, err := cell.CharacterizeParCheck(pc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ConfigFromCells(regChar, pcChar, true)
	if cfg.SwapTime != 0.1 || cfg.GateTime != 0.1 || cfg.OneQTime != 0.04 || cfg.ReadoutTime != 1 {
		t.Fatalf("timings not propagated: %+v", cfg)
	}
	// Storage lifetime recovered within 20% of the true 12.5 ms.
	if cfg.TsMicros < 10000 || cfg.TsMicros > 15000 {
		t.Fatalf("recovered Ts = %v us, want ~12500", cfg.TsMicros)
	}
	if cfg.GateError <= 0 || cfg.GateError > 1e-3 {
		t.Fatalf("gate error %v out of coherence-limited band", cfg.GateError)
	}
	// The derived configuration runs end to end.
	cfg.Seed = 5
	cfg.ConsumeAtThreshold = true
	stats := NewModule(cfg).Run(5000)
	if stats.Delivered == 0 {
		t.Fatal("derived configuration should distill successfully")
	}
}
