package distill

import (
	"math"
	"math/rand"

	"hetarch/internal/cell"
	"hetarch/internal/sched"
)

// Config parameterizes one entanglement-distillation module simulation.
// Times are microseconds, rates kHz, matching the paper's Section 4.1 setup.
type Config struct {
	Seed int64

	// Heterogeneous selects storage-backed memories (lifetime Ts). The
	// homogeneous baseline stores pairs on compute devices (lifetime Tc).
	Heterogeneous bool
	TsMicros      float64 // storage lifetime per mode
	TcMicros      float64 // compute lifetime

	InputSlots  int // input memory capacity (2 Registers × 3 modes = 6)
	OutputSlots int // output memory capacity (1 Register × 3 modes = 3)

	GenRateKHz    float64 // mean EP generation rate
	RawInfidelity float64 // infidelity of freshly generated EPs (Werner)

	TargetFidelity float64 // distillation target (paper: 0.995)

	// RoutingSwaps is the number of lattice SWAPs (3 CNOTs each) needed to
	// bring two pairs adjacent before each round. Zero for the
	// heterogeneous module (the ParCheck cell is directly coupled to the
	// memories); positive for the homogeneous sea-of-qubits baseline,
	// where pairs must be routed across the lattice.
	RoutingSwaps int

	// Distillers is the number of DEJMPS rounds that may run concurrently
	// (1 for the heterogeneous module's single ParCheck cell; the
	// homogeneous sea-of-qubits baseline may use as many as it needs).
	Distillers int

	SwapTime    float64 // µs, load/store between memory and compute
	GateTime    float64 // µs, two-qubit gate
	OneQTime    float64 // µs, single-qubit gate
	ReadoutTime float64 // µs
	GateError   float64 // two-qubit gate depolarizing error (0 = coherence-limited)

	// ConsumeAtThreshold frees an output slot as soon as a pair reaches the
	// target (rate-measurement mode, Fig. 4). When false, delivered pairs
	// decay in the output register (trace mode, Fig. 3).
	ConsumeAtThreshold bool

	// TraceInterval > 0 records the best output-pair infidelity every
	// interval (Fig. 3).
	TraceInterval float64
}

// DefaultConfig returns the paper's baseline parameters for the
// heterogeneous module with Ts in milliseconds.
func DefaultConfig(tsMillis float64, heterogeneous bool) Config {
	// The heterogeneous module uses a single ParCheck distillation cell
	// (found sufficient in the paper's capacity sweep). The homogeneous
	// baseline is a sea of qubits "as large as needed", so it is not
	// distiller-limited.
	distillers := 1
	routingSwaps := 0
	if !heterogeneous {
		// Sea of qubits, as large as needed: distillation rounds can run in
		// parallel, but each round pays lattice routing to bring the two
		// pairs together (cf. the Qiskit-transpiled baseline).
		distillers = 2
		routingSwaps = 1
	}
	return Config{
		Heterogeneous:  heterogeneous,
		TsMicros:       tsMillis * 1000,
		TcMicros:       500,
		InputSlots:     6,
		OutputSlots:    3,
		Distillers:     distillers,
		RoutingSwaps:   routingSwaps,
		GenRateKHz:     1000,
		RawInfidelity:  0.02,
		TargetFidelity: 0.995,
		SwapTime:       0.1,
		GateTime:       0.1,
		OneQTime:       0.04,
		ReadoutTime:    1,
		GateError:      0,
	}
}

// TracePoint is one sample of the Fig. 3 time series.
type TracePoint struct {
	Time           float64 // µs
	BestInfidelity float64 // best output pair (1 if none)
}

// Stats accumulates module metrics over a run.
type Stats struct {
	Generated     int // EPs produced by the source
	Stored        int // EPs accepted into input memory
	DroppedFull   int // EPs lost to full input memory
	Attempts      int // distillation rounds started
	Successes     int // rounds that kept a pair
	Delivered     int // pairs at/above target placed in output
	Trace         []TracePoint
	HorizonMicros float64
}

// DeliveredRatePerSecond returns delivered pairs per second of simulated
// time.
func (s Stats) DeliveredRatePerSecond() float64 {
	if s.HorizonMicros <= 0 {
		return 0
	}
	return float64(s.Delivered) / (s.HorizonMicros * 1e-6)
}

type storedPair struct {
	pair       Pair
	lastUpdate float64
	rounds     int // distillation rounds survived
}

// Module is the entanglement-distillation module simulator: input memory,
// one distillation unit (ParCheck cell), output memory, and the greedy
// scheduler of Section 4.1.
type Module struct {
	cfg Config
	sim *sched.Sim
	rng *rand.Rand

	input  []*storedPair // fixed-size slot arrays; nil = free
	output []*storedPair

	busyDistillers int
	stats          Stats
}

// NewModule prepares a simulation.
func NewModule(cfg Config) *Module {
	if cfg.InputSlots <= 1 || cfg.OutputSlots < 1 {
		panic("distill: need at least 2 input slots and 1 output slot")
	}
	if cfg.Distillers < 1 {
		cfg.Distillers = 1
	}
	return &Module{
		cfg:    cfg,
		sim:    &sched.Sim{},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		input:  make([]*storedPair, cfg.InputSlots),
		output: make([]*storedPair, cfg.OutputSlots),
	}
}

// memoryLifetime returns the (T1, T2) of a memory slot under the
// architecture choice.
func (m *Module) memoryLifetime() (float64, float64) {
	if m.cfg.Heterogeneous {
		return m.cfg.TsMicros, m.cfg.TsMicros
	}
	return m.cfg.TcMicros, m.cfg.TcMicros
}

// refresh applies lazy decoherence to a stored pair up to the current time.
// Both halves decay with the memory lifetime (symmetric nodes).
func (m *Module) refresh(sp *storedPair) {
	now := m.sim.Now()
	dt := now - sp.lastUpdate
	if dt <= 0 {
		return
	}
	t1, t2 := m.memoryLifetime()
	sp.pair = sp.pair.Decohere(dt, t1, t2, t1, t2)
	sp.lastUpdate = now
}

// distillOpTime is the duration of one DEJMPS round on the ParCheck cell:
// two loads, local rotations, bilateral CNOT, readout.
func (m *Module) distillOpTime() float64 {
	return 2*m.cfg.SwapTime + m.cfg.OneQTime + m.cfg.GateTime + m.cfg.ReadoutTime
}

// Run simulates the module for the given horizon (µs) and returns the
// accumulated statistics.
func (m *Module) Run(horizonMicros float64) Stats {
	m.stats = Stats{HorizonMicros: horizonMicros}
	m.scheduleArrival(horizonMicros)
	if m.cfg.TraceInterval > 0 {
		m.scheduleTrace(horizonMicros)
	}
	m.sim.RunUntil(horizonMicros)
	return m.stats
}

func (m *Module) scheduleArrival(horizon float64) {
	// Exponential inter-arrival with mean 1/rate. Rates are kHz = events
	// per millisecond; convert to events per µs.
	ratePerMicro := m.cfg.GenRateKHz / 1000.0
	dt := m.rng.ExpFloat64() / ratePerMicro
	t := m.sim.Now() + dt
	if t > horizon {
		return
	}
	m.sim.At(t, func() {
		m.stats.Generated++
		m.acceptPair(NewWernerPair(1 - m.cfg.RawInfidelity))
		m.schedule()
		m.scheduleArrival(horizon)
	})
}

func (m *Module) scheduleTrace(horizon float64) {
	var tick func()
	tick = func() {
		m.stats.Trace = append(m.stats.Trace, TracePoint{
			Time:           m.sim.Now(),
			BestInfidelity: m.BestOutputInfidelity(),
		})
		if m.sim.Now()+m.cfg.TraceInterval <= horizon {
			m.sim.After(m.cfg.TraceInterval, tick)
		}
	}
	m.sim.At(0, tick)
}

// acceptPair stores an incoming EP in input memory (priority 4). When the
// memory is full, the incoming pair overwrites the worst stored pair if it
// is better (stale low-quality pairs must not clog the register forever);
// otherwise the incoming pair is dropped.
func (m *Module) acceptPair(p Pair) {
	worst, worstF := -1, 2.0
	for i, s := range m.input {
		if s == nil {
			m.input[i] = &storedPair{pair: p, lastUpdate: m.sim.Now()}
			m.stats.Stored++
			return
		}
		m.refresh(s)
		if f := s.pair.Fidelity(); f < worstF {
			worstF = f
			worst = i
		}
	}
	if worst >= 0 && p.Fidelity() > worstF {
		m.input[worst] = &storedPair{pair: p, lastUpdate: m.sim.Now()}
		m.stats.Stored++
		m.stats.DroppedFull++ // the evicted pair counts as a loss
		return
	}
	m.stats.DroppedFull++
}

// BestOutputInfidelity reports the lowest infidelity among output pairs
// after refreshing them to the current time (1 when the register is empty).
func (m *Module) BestOutputInfidelity() float64 {
	best := 1.0
	for _, s := range m.output {
		if s == nil {
			continue
		}
		m.refresh(s)
		if inf := s.pair.Infidelity(); inf < best {
			best = inf
		}
	}
	return best
}

// schedule runs the greedy scheduler: (1) re-distill stored pairs when it
// improves them, (2) move threshold pairs to output, (3) distill fresh
// pairs, (4) storing of incoming pairs happens in acceptPair.
// Priorities (1) and (3) collapse into one rule because both pick the two
// best available pairs and require predicted improvement.
func (m *Module) schedule() {
	// Refresh all stored pairs to now.
	for _, s := range m.input {
		if s != nil {
			m.refresh(s)
		}
	}

	// Priority 2: move pairs at/above target into output memory.
	for i, s := range m.input {
		if s == nil || s.pair.Fidelity() < m.cfg.TargetFidelity {
			continue
		}
		if m.deliver(s) {
			m.input[i] = nil
		}
	}

	for m.busyDistillers < m.cfg.Distillers {
		if !m.startBestDistillation() {
			return
		}
	}
}

// startBestDistillation picks and launches the best available distillation
// round, returning false when no improving combination exists.
func (m *Module) startBestDistillation() bool {

	// Priorities 1+3: recurrence scheduling. Combining a well-distilled
	// pair with a fresh one saturates below the target (entanglement
	// pumping), so only pairs from the same distillation round are
	// combined — the binary-tree recurrence DEJMPS converges under. Among
	// equal-round combinations the one with the highest predicted output
	// fidelity wins; existing distilled pairs (higher rounds) take priority
	// over fresh ones, implementing the paper's priority (1) before (3).
	a, b := -1, -1
	bestRounds, bestPred := -1, -1.0
	for i := range m.input {
		if m.input[i] == nil {
			continue
		}
		for j := i + 1; j < len(m.input); j++ {
			if m.input[j] == nil || m.input[j].rounds != m.input[i].rounds {
				continue
			}
			pi, pj := m.input[i].pair, m.input[j].pair
			pred, ps := DEJMPS(pi, pj, m.cfg.GateError)
			if ps <= 0 {
				continue
			}
			if pred.Fidelity() <= math.Max(pi.Fidelity(), pj.Fidelity()) {
				continue // no improvement (priority-1 guard)
			}
			r := m.input[i].rounds
			if r > bestRounds || (r == bestRounds && pred.Fidelity() > bestPred) {
				bestRounds = r
				bestPred = pred.Fidelity()
				a, b = i, j
			}
		}
	}
	if a < 0 {
		return false
	}
	pa, pb := m.input[a].pair, m.input[b].pair
	predicted, pSucc := DEJMPS(pa, pb, m.cfg.GateError)
	rounds := m.input[a].rounds + 1 // both inputs are at the same depth
	m.input[a], m.input[b] = nil, nil
	m.busyDistillers++
	m.stats.Attempts++
	// The round pipelines: the surviving pair is back in memory once the
	// SWAPs and gates are done (gate phase); the distillation unit's
	// readout ancilla stays busy for the full round. Classical
	// communication is neglected (as in the paper), so the success of the
	// round is resolved when the pair is released — retroactive discard
	// under pipelining is statistically identical.
	gatePhase := 2*m.cfg.SwapTime + m.cfg.OneQTime + m.cfg.GateTime +
		float64(m.cfg.RoutingSwaps)*3*m.cfg.GateTime
	m.sim.After(gatePhase, func() {
		if m.rng.Float64() < pSucc {
			m.stats.Successes++
			// The surviving pair idles on compute devices while the gates
			// run; afterwards it rests in memory (storage for the
			// heterogeneous design, a compute qubit for the homogeneous
			// baseline — exactly where the heterogeneous design wins).
			out := predicted.Decohere(gatePhase,
				m.cfg.TcMicros, m.cfg.TcMicros, m.cfg.TcMicros, m.cfg.TcMicros)
			sp := &storedPair{pair: out, lastUpdate: m.sim.Now(), rounds: rounds}
			if out.Fidelity() >= m.cfg.TargetFidelity && m.deliver(sp) {
				// delivered directly
			} else {
				m.storeBack(sp)
			}
		}
		m.schedule()
	})
	m.sim.After(m.distillOpTime(), func() {
		m.busyDistillers--
		m.schedule()
	})
	return true
}

// deliver places a threshold-quality pair into the output register. When
// the register is full, the freshly distilled pair replaces the worst
// stored output pair if it is better (the output register always offers the
// best pairs produced so far); it returns false only when the pair is worse
// than everything already stored.
func (m *Module) deliver(sp *storedPair) bool {
	worst, worstF := -1, 2.0
	for i, s := range m.output {
		if s == nil {
			m.stats.Delivered++
			if m.cfg.ConsumeAtThreshold {
				return true // consumed immediately; slot stays free
			}
			m.output[i] = sp
			return true
		}
		m.refresh(s)
		if f := s.pair.Fidelity(); f < worstF {
			worstF = f
			worst = i
		}
	}
	if worst >= 0 && sp.pair.Fidelity() > worstF {
		m.output[worst] = sp
		m.stats.Delivered++
		return true
	}
	return false
}

// storeBack returns a distilled-but-below-target pair to input memory for
// further rounds. When the memory has meanwhile filled with fresh arrivals,
// the worst stored pair is evicted — a distilled pair embodies several raw
// pairs of work and must not be displaced by raw inflow.
func (m *Module) storeBack(sp *storedPair) {
	worst, worstF := -1, 2.0
	for i, s := range m.input {
		if s == nil {
			m.input[i] = sp
			return
		}
		m.refresh(s)
		if f := s.pair.Fidelity(); f < worstF {
			worstF = f
			worst = i
		}
	}
	if worst >= 0 && sp.pair.Fidelity() > worstF {
		m.input[worst] = sp
		m.stats.DroppedFull++ // the evicted pair counts as a loss
		return
	}
	m.stats.DroppedFull++
}

// InputOccupancy returns the number of occupied input slots.
func (m *Module) InputOccupancy() int {
	n := 0
	for _, s := range m.input {
		if s != nil {
			n++
		}
	}
	return n
}

// ConfigFromCells derives the module configuration from characterized
// standard cells — the HetArch hierarchy in action: the Register and
// ParCheck characterizations (produced once by density-matrix simulation)
// fix the load/store timing, gate timing, readout timing and the two-qubit
// gate error; the memory lifetime is recovered from the register's
// per-microsecond idle fidelity.
//
// registerChar must provide ops "load" and "idle-1us"; parcheckChar must
// provide "2q-gate", "1q-gate" and "readout" (as produced by
// cell.CharacterizeRegister and cell.CharacterizeParCheck).
func ConfigFromCells(registerChar, parcheckChar *cell.Characterization, heterogeneous bool) Config {
	load := registerChar.MustOp("load")
	idle := registerChar.MustOp("idle-1us")
	g2 := parcheckChar.MustOp("2q-gate")
	g1 := parcheckChar.MustOp("1q-gate")
	ro := parcheckChar.MustOp("readout")

	// Recover the storage lifetime from the per-µs idle fidelity: the
	// twirled idle error over 1 µs is ≈ (3/4)·(1 − e^{−1/T}) ≈ 0.75/T.
	perUs := idle.ErrorRate()
	tsMicros := 1e9 // effectively noiseless fallback
	if perUs > 0 {
		tsMicros = 0.75 / perUs
	}

	cfg := DefaultConfig(tsMicros/1000, heterogeneous)
	cfg.SwapTime = load.Duration
	cfg.GateTime = g2.Duration
	cfg.OneQTime = g1.Duration
	cfg.ReadoutTime = ro.Duration
	cfg.GateError = g2.ErrorRate()
	return cfg
}
