// Package distill implements the entanglement-distillation module of
// Section 4.1: Bell-diagonal entangled-pair states, the DEJMPS recurrence,
// decoherence of stored pairs, a stochastic EP source, and the greedy
// scheduler coordinating input memory, distillation, and output memory.
package distill

import (
	"fmt"
	"math"

	"hetarch/internal/densmat"
	"hetarch/internal/linalg"
)

// Pair is a Bell-diagonal two-qubit state, the closure of Bell states under
// Pauli noise and DEJMPS rounds. Coefficients are probabilities of the four
// Bell projectors in the order |Φ+⟩, |Φ−⟩, |Ψ+⟩, |Ψ−⟩; Fidelity is P[Φ+].
type Pair struct {
	P [4]float64
}

// NewWernerPair returns the Werner state with the given fidelity.
func NewWernerPair(fidelity float64) Pair {
	if fidelity < 0 || fidelity > 1 {
		panic(fmt.Sprintf("distill: fidelity %g out of range", fidelity))
	}
	rest := (1 - fidelity) / 3
	return Pair{P: [4]float64{fidelity, rest, rest, rest}}
}

// Fidelity returns the overlap with |Φ+⟩.
func (p Pair) Fidelity() float64 { return p.P[0] }

// Infidelity returns 1 − fidelity.
func (p Pair) Infidelity() float64 { return 1 - p.P[0] }

// Validate checks normalization and positivity.
func (p Pair) Validate() error {
	sum := 0.0
	for _, v := range p.P {
		if v < -1e-12 {
			return fmt.Errorf("distill: negative Bell coefficient %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("distill: Bell coefficients sum to %g", sum)
	}
	return nil
}

// applyPauliOneSide mixes the coefficients under a Pauli channel
// (px, py, pz) acting on ONE qubit of the pair. Pauli action permutes Bell
// states: X swaps Φ±↔Ψ±, Z swaps +↔−, Y does both.
func applyPauliOneSide(p [4]float64, px, py, pz float64) [4]float64 {
	pi := 1 - px - py - pz
	var out [4]float64
	// index: 0 Φ+, 1 Φ−, 2 Ψ+, 3 Ψ−
	permX := [4]int{2, 3, 0, 1}
	permZ := [4]int{1, 0, 3, 2}
	permY := [4]int{3, 2, 1, 0}
	for i := 0; i < 4; i++ {
		out[i] += pi * p[i]
		out[permX[i]] += px * p[i]
		out[permY[i]] += py * p[i]
		out[permZ[i]] += pz * p[i]
	}
	return out
}

// Decohere evolves the pair for duration dt (µs) with each listed side
// idling under its own (T1, T2): the amplitude+phase damping of each half is
// Pauli-twirled into an asymmetric Pauli channel, which keeps the state
// Bell-diagonal. sideT1/sideT2 give per-side coherence times; a side with
// T1 ≤ 0 is treated as noiseless.
func (p Pair) Decohere(dt float64, t1A, t2A, t1B, t2B float64) Pair {
	out := p.P
	if t1A > 0 {
		px, py, pz := idlePauli(dt, t1A, t2A)
		out = applyPauliOneSide(out, px, py, pz)
	}
	if t1B > 0 {
		px, py, pz := idlePauli(dt, t1B, t2B)
		out = applyPauliOneSide(out, px, py, pz)
	}
	return Pair{P: out}
}

// idlePauli is the same twirl as stabsim.IdlePauliChannel, duplicated here
// to keep the package dependency-light; both are covered by tests.
func idlePauli(dt, t1, t2 float64) (px, py, pz float64) {
	pT1 := 1 - math.Exp(-dt/t1)
	if t2 <= 0 || t2 > 2*t1 {
		t2 = 2 * t1
	}
	pT2 := 1 - math.Exp(-dt/t2)
	px = pT1 / 4
	py = pT1 / 4
	pz = pT2/2 - pT1/4
	if pz < 0 {
		pz = 0
	}
	return
}

// DEJMPS consumes two pairs and returns the distilled output pair, the
// success probability of the protocol round, and the deterministic gate
// infidelity penalty applied (from the two-qubit gate error of the cell
// executing it, folded in as depolarizing noise on the surviving pair).
//
// The recurrence is the closed form of the DEJMPS circuit — local √X
// rotations, bilateral CNOTs, Z measurement of the second pair, postselected
// on equal outcomes. It is validated against exact density-matrix simulation
// (DEJMPSExact) in the package tests.
func DEJMPS(a, b Pair, gateError float64) (out Pair, pSuccess float64) {
	// Coefficient labels: 0 Φ+, 1 Φ−, 2 Ψ+, 3 Ψ−.
	// The DEJMPS rotations pair Φ+ with Ψ− and Φ− with Ψ+; the recurrence
	// (validated against DEJMPSExact in tests) is:
	//   N    = (a0+a3)(b0+b3) + (a1+a2)(b1+b2)
	//   out0 = (a0·b0 + a3·b3)/N
	//   out1 = (a0·b3 + a3·b0)/N
	//   out2 = (a1·b1 + a2·b2)/N
	//   out3 = (a1·b2 + a2·b1)/N
	n := (a.P[0]+a.P[3])*(b.P[0]+b.P[3]) + (a.P[1]+a.P[2])*(b.P[1]+b.P[2])
	if n <= 0 {
		return Pair{}, 0
	}
	out = Pair{P: [4]float64{
		(a.P[0]*b.P[0] + a.P[3]*b.P[3]) / n,
		(a.P[0]*b.P[3] + a.P[3]*b.P[0]) / n,
		(a.P[1]*b.P[1] + a.P[2]*b.P[2]) / n,
		(a.P[1]*b.P[2] + a.P[2]*b.P[1]) / n,
	}}
	if gateError > 0 {
		// Two noisy CNOTs touch the surviving pair (one on each side);
		// fold their depolarizing error in as a symmetric Pauli channel.
		e := gateError
		out = Pair{P: applyPauliOneSide(out.P, e/4, e/4, e/4)}
		out = Pair{P: applyPauliOneSide(out.P, e/4, e/4, e/4)}
	}
	return out, n
}

// DEJMPSExact runs the DEJMPS circuit on two Bell-diagonal pairs by exact
// density-matrix simulation and returns the postselected output pair and
// success probability. It is the reference implementation used to validate
// the closed-form recurrence (and is exposed for ablation benchmarks).
func DEJMPSExact(a, b Pair) (Pair, float64) {
	// Qubits: 0 = Alice pair1, 1 = Bob pair1, 2 = Alice pair2, 3 = Bob pair2.
	d := bellDiagonal4(a, b)

	sx := linalg.RX(math.Pi / 2)     // Alice: √X
	sxDag := linalg.RX(-math.Pi / 2) // Bob: √X†
	d.ApplyUnitary(sx, 0)
	d.ApplyUnitary(sx, 2)
	d.ApplyUnitary(sxDag, 1)
	d.ApplyUnitary(sxDag, 3)
	d.ApplyUnitary(linalg.CNOT(), 0, 2)
	d.ApplyUnitary(linalg.CNOT(), 1, 3)

	// Postselect equal outcomes on qubits 2 and 3: P00 + P11.
	p00 := projectTwo(d, 2, 3, 0, 0)
	p11 := projectTwo(d, 2, 3, 1, 1)
	pSucc := p00.prob + p11.prob
	if pSucc <= 1e-15 {
		return Pair{}, 0
	}
	// Mix the two postselected branches (classically flagged but both kept).
	mixed := linalg.Add(
		linalg.Scale(complex(p00.prob/pSucc, 0), p00.state.Matrix()),
		linalg.Scale(complex(p11.prob/pSucc, 0), p11.state.Matrix()),
	)
	reduced := densmat.FromMatrix(mixed).PartialTrace(0, 1)
	var out Pair
	basis := [][]complex128{
		densmat.BellPhiPlus(), densmat.BellPhiMinus(),
		densmat.BellPsiPlus(), densmat.BellPsiMinus(),
	}
	for i, psi := range basis {
		out.P[i] = reduced.FidelityPure(psi)
	}
	return out, pSucc
}

type projected struct {
	prob  float64
	state *densmat.DensityMatrix
}

// projectTwo projects qubits qa and qb of a copy of d onto the given
// outcomes and returns the normalized state and branch probability.
func projectTwo(d *densmat.DensityMatrix, qa, qb, oa, ob int) projected {
	c := d.Clone()
	pa := c.Prob(qa, oa)
	if pa < 1e-15 {
		return projected{}
	}
	c.Project(qa, oa)
	pb := c.Prob(qb, ob)
	if pb < 1e-15 {
		return projected{}
	}
	c.Project(qb, ob)
	return projected{prob: pa * pb, state: c}
}

// bellDiagonal4 builds the 4-qubit product state pairA(0,1) ⊗ pairB(2,3)
// with each pair Bell-diagonal.
func bellDiagonal4(a, b Pair) *densmat.DensityMatrix {
	mats := make([]*linalg.Matrix, 2)
	for k, pr := range []Pair{a, b} {
		basis := [][]complex128{
			densmat.BellPhiPlus(), densmat.BellPhiMinus(),
			densmat.BellPsiPlus(), densmat.BellPsiMinus(),
		}
		acc := linalg.New(4, 4)
		for i, psi := range basis {
			proj := densmat.FromPure(psi).Matrix()
			linalg.AddInPlace(acc, linalg.Scale(complex(pr.P[i], 0), proj))
		}
		mats[k] = acc
	}
	return densmat.FromMatrix(linalg.Kron(mats[0], mats[1]))
}

// Twirl projects the pair onto Werner form, preserving fidelity — the
// depolarization step of the BBPSSW protocol (random bilateral rotations).
func (p Pair) Twirl() Pair {
	return NewWernerPair(p.P[0])
}

// BBPSSW applies one round of the Bennett et al. purification protocol:
// both pairs are twirled to Werner form, a bilateral CNOT and postselected
// measurement are applied, and the output is reported in Werner form. It
// converges strictly slower than DEJMPS (which skips the twirl and exploits
// the Bell-diagonal structure); the package benchmarks quantify the gap.
func BBPSSW(a, b Pair, gateError float64) (out Pair, pSuccess float64) {
	fa := a.Fidelity()
	fb := b.Fidelity()
	// Standard closed form for Werner inputs.
	ea, eb := (1-fa)/3, (1-fb)/3
	n := fa*fb + fa*eb + fb*ea + 5*ea*eb
	if n <= 0 {
		return Pair{}, 0
	}
	fOut := (fa*fb + ea*eb) / n
	out = NewWernerPair(fOut)
	if gateError > 0 {
		e := gateError
		out = Pair{P: applyPauliOneSide(out.P, e/4, e/4, e/4)}
		out = Pair{P: applyPauliOneSide(out.P, e/4, e/4, e/4)}
		out = out.Twirl()
	}
	return out, n
}
