package distill

import (
	"runtime"
	"testing"
)

func TestRunEnsembleDeterministicAcrossWorkerCounts(t *testing.T) {
	cfg := DefaultConfig(12.5, true)
	cfg.Seed = 5
	base := RunEnsemble(cfg, 6, 5000, 1)
	if base.Replicas != 6 {
		t.Fatalf("replica accounting wrong: %+v", base)
	}
	if base.Generated == 0 {
		t.Fatal("ensemble generated nothing")
	}
	for _, w := range []int{4, runtime.NumCPU()} {
		if got := RunEnsemble(cfg, 6, 5000, w); got != base {
			t.Fatalf("workers=%d: %+v != workers=1 %+v", w, got, base)
		}
	}
	if again := RunEnsemble(cfg, 6, 5000, 4); again != base {
		t.Fatal("ensemble not reproducible")
	}
}

func TestRunEnsemblePoolsAcrossReplicas(t *testing.T) {
	cfg := DefaultConfig(12.5, true)
	cfg.Seed = 7
	one := RunEnsemble(cfg, 1, 5000, 1)
	three := RunEnsemble(cfg, 3, 5000, 1)
	if three.Delivered < one.Delivered {
		t.Fatalf("pooled delivered (%d) below single replica (%d)", three.Delivered, one.Delivered)
	}
	// The mean rate stays in the same regime as a single trajectory.
	if one.Delivered > 0 && three.DeliveredRatePerSecond() <= 0 {
		t.Fatal("mean rate lost")
	}
}
