package distill

import (
	"context"
	"errors"

	"hetarch/internal/mc"
)

// EnsembleStats pools the counters of several independent module
// trajectories. Counts are sums; the delivered rate averages over replicas
// (each replica simulates the same horizon, so the mean rate equals the
// pooled delivered count over the pooled simulated time).
type EnsembleStats struct {
	Replicas      int
	HorizonMicros float64

	Generated   int
	Stored      int
	DroppedFull int
	Attempts    int
	Successes   int
	Delivered   int
}

// DeliveredRatePerSecond returns delivered pairs per second of simulated
// time, averaged over the ensemble.
func (s EnsembleStats) DeliveredRatePerSecond() float64 {
	if s.HorizonMicros <= 0 || s.Replicas <= 0 {
		return 0
	}
	return float64(s.Delivered) / (float64(s.Replicas) * s.HorizonMicros * 1e-6)
}

// RunEnsemble simulates `replicas` independent trajectories of the module
// over the same horizon and pools their statistics. The event-driven
// simulator cannot batch shots the way the frame samplers do, so here the mc
// engine shards at one trajectory per shard: replica i runs with the
// deterministic stream seed mc.StreamSeed(cfg.Seed, i), making the pooled
// stats bit-identical for any worker count (workers <= 0 means
// runtime.NumCPU()).
func RunEnsemble(cfg Config, replicas int, horizonMicros float64, workers int) EnsembleStats {
	stats, err := RunEnsembleContext(context.Background(), cfg, replicas, horizonMicros, workers)
	if err != nil {
		panic(err)
	}
	return stats
}

// RunEnsembleContext is RunEnsemble under a context: cancellation stops
// dispatching new replicas and pools only those that completed (Replicas
// reflects the completed count, so DeliveredRatePerSecond stays an unbiased
// per-replica average), returning the *mc.PartialError alongside. Replica
// trajectories are not checkpointed — each shard returns rich Stats, not a
// Tally — so a resumed run re-simulates them; determinism makes that exact,
// just not free.
func RunEnsembleContext(ctx context.Context, cfg Config, replicas int, horizonMicros float64, workers int) (EnsembleStats, error) {
	if replicas < 1 {
		replicas = 1
	}
	mcCfg := mc.Config{Shots: replicas, Seed: cfg.Seed, Workers: workers, ShardSize: 1}
	perReplica, err := mc.MapShardsContext(ctx, mcCfg, func() func(mc.Shard) Stats {
		return func(sh mc.Shard) Stats {
			c := cfg
			c.Seed = sh.Seed
			return NewModule(c).Run(horizonMicros)
		}
	})
	pooled := EnsembleStats{HorizonMicros: horizonMicros}
	if err != nil {
		var pe *mc.PartialError
		if !errors.As(err, &pe) {
			return EnsembleStats{}, err
		}
		// Pool only the replicas that completed; order them by shard index
		// so the partial pool is deterministic.
		kept := make([]Stats, 0, len(pe.Completed))
		for _, i := range pe.Completed {
			kept = append(kept, perReplica[i])
		}
		perReplica = kept
	}
	pooled.Replicas = len(perReplica)
	for _, s := range perReplica {
		pooled.Generated += s.Generated
		pooled.Stored += s.Stored
		pooled.DroppedFull += s.DroppedFull
		pooled.Attempts += s.Attempts
		pooled.Successes += s.Successes
		pooled.Delivered += s.Delivered
	}
	return pooled, err
}
