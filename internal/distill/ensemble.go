package distill

import (
	"hetarch/internal/mc"
)

// EnsembleStats pools the counters of several independent module
// trajectories. Counts are sums; the delivered rate averages over replicas
// (each replica simulates the same horizon, so the mean rate equals the
// pooled delivered count over the pooled simulated time).
type EnsembleStats struct {
	Replicas      int
	HorizonMicros float64

	Generated   int
	Stored      int
	DroppedFull int
	Attempts    int
	Successes   int
	Delivered   int
}

// DeliveredRatePerSecond returns delivered pairs per second of simulated
// time, averaged over the ensemble.
func (s EnsembleStats) DeliveredRatePerSecond() float64 {
	if s.HorizonMicros <= 0 || s.Replicas <= 0 {
		return 0
	}
	return float64(s.Delivered) / (float64(s.Replicas) * s.HorizonMicros * 1e-6)
}

// RunEnsemble simulates `replicas` independent trajectories of the module
// over the same horizon and pools their statistics. The event-driven
// simulator cannot batch shots the way the frame samplers do, so here the mc
// engine shards at one trajectory per shard: replica i runs with the
// deterministic stream seed mc.StreamSeed(cfg.Seed, i), making the pooled
// stats bit-identical for any worker count (workers <= 0 means
// runtime.NumCPU()).
func RunEnsemble(cfg Config, replicas int, horizonMicros float64, workers int) EnsembleStats {
	if replicas < 1 {
		replicas = 1
	}
	mcCfg := mc.Config{Shots: replicas, Seed: cfg.Seed, Workers: workers, ShardSize: 1}
	perReplica := mc.MapShards(mcCfg, func() func(mc.Shard) Stats {
		return func(sh mc.Shard) Stats {
			c := cfg
			c.Seed = sh.Seed
			return NewModule(c).Run(horizonMicros)
		}
	})
	pooled := EnsembleStats{Replicas: len(perReplica), HorizonMicros: horizonMicros}
	for _, s := range perReplica {
		pooled.Generated += s.Generated
		pooled.Stored += s.Stored
		pooled.DroppedFull += s.DroppedFull
		pooled.Attempts += s.Attempts
		pooled.Successes += s.Successes
		pooled.Delivered += s.Delivered
	}
	return pooled
}
