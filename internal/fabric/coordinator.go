// Coordinator side of the fabric: the HTTP server that owns the lease
// state machine and the shard-order merge, plus the mc.Remote
// implementation that plugs it under the experiment runners.
package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"hetarch/internal/mc"
	"hetarch/internal/obs/runlog"
)

// CoordinatorOptions configures Start.
type CoordinatorOptions struct {
	// Addr is the listen address (host:port; port 0 picks a free one).
	Addr string
	// Spec is the job served to workers.
	Spec JobSpec
	// Checkpoint, when set, journals every accepted tally before it is
	// acknowledged — the mc checkpoint file doubles as the lease/recovery
	// log, so a killed coordinator resumes without re-running completed
	// ranges. Runs are keyed exactly like a local run's, so a fabric
	// checkpoint resumes a local run and vice versa.
	Checkpoint mc.Checkpoint

	// LeaseTTL is how long a granted lease lives without a heartbeat
	// renewal before its range returns to the pending pool (default
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// LeaseShards is the shard-range block size of one lease (default
	// DefaultLeaseShards).
	LeaseShards int
	// LocalDelay is how long the coordinator leaves a pending block to the
	// worker pool before executing it locally. With no live workers it
	// takes over immediately, so a coordinator with no workers degrades to
	// a plain local run (default DefaultLocalDelay).
	LocalDelay time.Duration
	// MinWorkers holds local fallback until this many distinct workers
	// have contacted the coordinator, so a short sweep cannot complete
	// locally before a cluster that is still starting up gets a shard.
	// Workers dying later does not re-arm the barrier, and leases and
	// merges are unaffected — the barrier only delays local takeover. 0
	// (the default) falls back immediately when no workers are live; a
	// cancelled context still aborts a coordinator waiting on the barrier.
	MinWorkers int
	// Poll is the coordinator's internal scan interval (default
	// DefaultPoll).
	Poll time.Duration
}

func (o *CoordinatorOptions) fill() {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.LeaseShards <= 0 {
		o.LeaseShards = DefaultLeaseShards
	}
	if o.LocalDelay <= 0 {
		o.LocalDelay = DefaultLocalDelay
	}
	if o.Poll <= 0 {
		o.Poll = DefaultPoll
	}
}

// lease is one granted shard-range block.
type lease struct {
	worker   string
	epoch    int
	deadline time.Time
}

// block is the lease unit: a fixed contiguous shard-index range of one run.
type block struct {
	start, end   int // shard index range [start, end)
	remaining    int // undone shards in the range
	lease        *lease
	epoch        int       // epochs issued so far for this block
	pendingSince time.Time // when the block last became pending (for LocalDelay)
	grantedAt    time.Time // first grant (for the lease-latency histogram)
}

// runState is one registered run: its decomposition, per-shard results,
// and lease blocks.
type runState struct {
	key       mc.RunKey
	shards    []mc.Shard
	done      []bool
	tallies   []mc.Tally
	blocks    []*block
	remaining int
	total     mc.Tally
	complete  bool
	// completeCh is closed when the run's last shard lands, waking the
	// coordinator's RunTally loop and any blocked HTTP pollers.
	completeCh chan struct{}
	recordErr  error // first checkpoint-record failure (durability lost)
}

// Coordinator serves the fabric protocol and implements mc.Remote for the
// process running the experiment control flow.
type Coordinator struct {
	opts CoordinatorOptions
	srv  *http.Server
	ln   net.Listener

	mu      sync.Mutex
	runSeq  int
	runs    map[mc.RunKey]*runState
	workers map[string]time.Time // worker ID -> last contact
	seen    map[string]bool      // every worker ID ever seen
	jobDone bool
	stats   Stats
}

// StartCoordinator binds the listener and starts serving the fabric
// protocol. The job is served immediately; runs register as the experiment
// control flow reaches them.
func StartCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	opts.fill()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", opts.Addr, err)
	}
	c := &Coordinator{
		opts:    opts,
		ln:      ln,
		runs:    map[mc.RunKey]*runState{},
		workers: map[string]time.Time{},
		seen:    map[string]bool{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc(PathJob, c.handleJob)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathRenew, c.handleRenew)
	mux.HandleFunc(PathTally, c.handleTally)
	c.srv = &http.Server{Handler: mux}
	go c.srv.Serve(ln)
	runlog.L().Info(evListen, "addr", c.Addr(), "experiment", opts.Spec.Experiment)
	return c, nil
}

// Addr returns the bound listen address (with the resolved port).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Stats returns a snapshot of the cluster composition and fault counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Addr = c.Addr()
	s.Workers = len(c.seen)
	return s
}

// Shutdown marks the job done, gives connected workers up to grace to
// observe it (each worker that polls the job state after this point is
// released and drops out of the live set), then closes the listener.
func (c *Coordinator) Shutdown(grace time.Duration) {
	c.mu.Lock()
	c.jobDone = true
	c.mu.Unlock()
	runlog.L().Info(evJobDone, "experiment", c.opts.Spec.Experiment)
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		live := c.liveWorkersLocked(time.Now())
		c.mu.Unlock()
		if live == 0 {
			break
		}
		time.Sleep(c.opts.Poll)
	}
	c.srv.Close()
	c.ln.Close()
}

// touchWorker records worker liveness (any request counts as contact).
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) {
	if id == "" {
		return
	}
	if !c.seen[id] {
		c.seen[id] = true
		runlog.L().Info(evWorkerSeen, "worker", id)
	}
	c.workers[id] = now
	workersLiveGage.Set(float64(c.liveWorkersLocked(now)))
}

// liveWorkersLocked counts workers heard from within one lease TTL.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	live := 0
	for id, last := range c.workers {
		if now.Sub(last) <= c.opts.LeaseTTL {
			live++
		} else {
			delete(c.workers, id)
		}
	}
	return live
}

// reapLocked expires overdue leases across every incomplete run, returning
// their blocks to the pending pool under a bumped epoch.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, rs := range c.runs {
		if rs.complete {
			continue
		}
		for _, b := range rs.blocks {
			if b.lease != nil && now.After(b.lease.deadline) {
				runlog.L().Warn(evLeaseExpired, "run", rs.key.Run, "start", b.start, "end", b.end,
					"worker", b.lease.worker, "epoch", b.lease.epoch)
				leasesExpired.Inc()
				c.stats.LeasesExpired++
				b.lease = nil
				b.pendingSince = now
			}
		}
	}
}

// register installs (or revisits) a run: assigns the next run number on
// first sight, decomposes the budget, and prefills completed shards from
// the checkpoint. RunTally is the only caller, so run numbering follows
// the experiment's deterministic control flow.
func (c *Coordinator) register(cfg mc.Config) *runState {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := mc.RunKey{Run: c.runSeq, Shots: cfg.Shots, Seed: cfg.Seed, ShardSize: cfg.ShardSizeOrDefault()}
	c.runSeq++
	if rs, ok := c.runs[key]; ok {
		return rs // unreachable in practice: run numbers never repeat
	}
	shards := cfg.Shards()
	rs := &runState{
		key:        key,
		shards:     shards,
		done:       make([]bool, len(shards)),
		tallies:    make([]mc.Tally, len(shards)),
		remaining:  len(shards),
		completeCh: make(chan struct{}),
	}
	now := time.Now()
	for i := range shards {
		if c.opts.Checkpoint == nil {
			break
		}
		if t, ok := c.opts.Checkpoint.Lookup(key, shards[i]); ok {
			rs.done[i] = true
			rs.tallies[i] = t
			rs.remaining--
		}
	}
	for start := 0; start < len(shards); start += c.opts.LeaseShards {
		end := start + c.opts.LeaseShards
		if end > len(shards) {
			end = len(shards)
		}
		b := &block{start: start, end: end, pendingSince: now}
		for i := start; i < end; i++ {
			if !rs.done[i] {
				b.remaining++
			}
		}
		rs.blocks = append(rs.blocks, b)
	}
	c.runs[key] = rs
	if rs.remaining == 0 {
		c.finishRunLocked(rs)
	}
	return rs
}

// finishRunLocked folds the per-shard tallies strictly in shard order and
// marks the run complete.
func (c *Coordinator) finishRunLocked(rs *runState) {
	rs.total = mc.Tally{}
	for i := range rs.tallies {
		rs.total.Add(rs.tallies[i])
	}
	rs.complete = true
	close(rs.completeCh)
}

// acceptLocked applies one shard tally: duplicates (already-done shards,
// whether from a re-leased range, a retried submission, or a partitioned
// worker's late delivery) are dropped, never double-counted. A shard whose
// stream seed disagrees with the coordinator's decomposition is a config
// drift between processes and poisons the submission.
func (c *Coordinator) acceptLocked(rs *runState, st ShardTally) (accepted bool, err error) {
	if st.Index < 0 || st.Index >= len(rs.shards) {
		return false, fmt.Errorf("shard %d out of range [0,%d)", st.Index, len(rs.shards))
	}
	if rs.shards[st.Index].Seed != st.Seed {
		runlog.L().Warn(evMismatch, "run", rs.key.Run, "shard", st.Index,
			"got_seed", st.Seed, "want_seed", rs.shards[st.Index].Seed)
		return false, fmt.Errorf("shard %d stream seed %d != %d: decomposition mismatch (flag drift between coordinator and worker?)",
			st.Index, st.Seed, rs.shards[st.Index].Seed)
	}
	if rs.done[st.Index] {
		tallyDupsDrop.Inc()
		c.stats.TallyDupsDropped++
		return false, nil
	}
	t := mc.Tally{Shots: st.Shots, Errors: st.Errors}
	if c.opts.Checkpoint != nil {
		if rerr := c.opts.Checkpoint.Record(rs.key, rs.shards[st.Index], t); rerr != nil {
			if rs.recordErr == nil {
				rs.recordErr = fmt.Errorf("fabric: checkpoint record: %w", rerr)
			}
			return false, rs.recordErr
		}
	}
	rs.done[st.Index] = true
	rs.tallies[st.Index] = t
	rs.remaining--
	tallyAccepted.Inc()
	c.stats.TalliesAccepted++
	for _, b := range rs.blocks {
		if st.Index >= b.start && st.Index < b.end {
			b.remaining--
			if b.remaining == 0 {
				if !b.grantedAt.IsZero() {
					leaseLatency.Observe(time.Since(b.grantedAt).Nanoseconds())
				}
				b.lease = nil
			}
		}
	}
	if rs.remaining == 0 {
		c.finishRunLocked(rs)
	}
	return true, nil
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	resp := JobResponse{State: JobRunning, Spec: c.opts.Spec}
	if c.jobDone {
		resp.State = JobDone
		// A worker that has observed job completion is released: drop it
		// from the live set so Shutdown does not wait on it.
		if id := r.URL.Query().Get("worker"); id != "" {
			delete(c.workers, id)
		}
	} else if id := r.URL.Query().Get("worker"); id != "" {
		c.touchWorkerLocked(id, time.Now())
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

// lookupRun resolves a lease/tally request's run key. Unknown keys are
// "wait": the worker may simply be ahead of the coordinator's control
// flow, which has not reached that run yet.
func (c *Coordinator) lookupRunLocked(key mc.RunKey) *runState {
	return c.runs[key]
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker, now)
	c.reapLocked(now)
	rs := c.lookupRunLocked(req.Key)
	if rs == nil {
		if c.jobDone {
			// The coordinator's control flow ended (normally or interrupted)
			// without ever reaching this run: release the worker instead of
			// letting it poll a run that will never register.
			writeJSON(w, LeaseResponse{Status: StatusError, ErrorMsg: "job is done; run never registered"})
			return
		}
		writeJSON(w, LeaseResponse{Status: StatusWait})
		return
	}
	if rs.recordErr != nil {
		writeJSON(w, LeaseResponse{Status: StatusError, ErrorMsg: rs.recordErr.Error()})
		return
	}
	if rs.complete {
		t := rs.total
		writeJSON(w, LeaseResponse{Status: StatusDone, Tally: &t})
		return
	}
	for _, b := range rs.blocks {
		if b.remaining == 0 || b.lease != nil {
			continue
		}
		b.epoch++
		b.lease = &lease{worker: req.Worker, epoch: b.epoch, deadline: now.Add(c.opts.LeaseTTL)}
		if b.grantedAt.IsZero() {
			b.grantedAt = now
		}
		leasesGranted.Inc()
		c.stats.LeasesGranted++
		writeJSON(w, LeaseResponse{
			Status: StatusLease, Epoch: b.epoch, Start: b.start, End: b.end,
			TTLMs: c.opts.LeaseTTL.Milliseconds(),
		})
		return
	}
	// Everything is leased or done; the worker polls again shortly.
	writeJSON(w, LeaseResponse{Status: StatusWait})
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker, now)
	c.reapLocked(now)
	rs := c.lookupRunLocked(req.Key)
	if rs == nil {
		writeJSON(w, RenewResponse{OK: false})
		return
	}
	for _, b := range rs.blocks {
		if b.start == req.Start && b.end == req.End &&
			b.lease != nil && b.lease.worker == req.Worker && b.lease.epoch == req.Epoch {
			b.lease.deadline = now.Add(c.opts.LeaseTTL)
			writeJSON(w, RenewResponse{OK: true})
			return
		}
	}
	writeJSON(w, RenewResponse{OK: false})
}

func (c *Coordinator) handleTally(w http.ResponseWriter, r *http.Request) {
	var req TallyRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker, now)
	rs := c.lookupRunLocked(req.Key)
	if rs == nil {
		// A tally for a run the coordinator never registered: late delivery
		// from a previous coordinator incarnation. Drop it whole.
		tallyDupsDrop.Add(int64(len(req.Tallies)))
		c.stats.TallyDupsDropped += int64(len(req.Tallies))
		runlog.L().Warn(evTallyDropped, "worker", req.Worker, "run", req.Key.Run, "shards", len(req.Tallies))
		writeJSON(w, TallyResponse{Duplicates: len(req.Tallies)})
		return
	}
	resp := TallyResponse{}
	for _, st := range req.Tallies {
		ok, err := c.acceptLocked(rs, st)
		if err != nil {
			resp.ErrorMsg = err.Error()
			break
		}
		if ok {
			resp.Accepted++
		} else {
			resp.Duplicates++
		}
	}
	writeJSON(w, resp)
}

// --- mc.Remote implementation ---

// RunTally registers the run with the lease state machine and drives it to
// completion: workers drain the blocks over HTTP while this loop reaps
// expired leases and — after LocalDelay, or immediately once the worker
// pool is empty — executes leftover blocks locally, so the run always
// terminates. The pooled tally is the shard-order fold of the per-shard
// results, bit-identical to a local run.
func (c *Coordinator) RunTally(ctx context.Context, cfg mc.Config, newWorker func() mc.ShardRunner) (mc.Tally, error) {
	rs := c.register(cfg)
	var localRun mc.ShardRunner
	ticker := time.NewTicker(c.opts.Poll)
	defer ticker.Stop()
	for {
		now := time.Now()
		c.mu.Lock()
		c.reapLocked(now)
		if rs.complete {
			t := rs.total
			c.mu.Unlock()
			return t, nil
		}
		if err := rs.recordErr; err != nil {
			c.mu.Unlock()
			return c.partial(rs, err)
		}
		if ctx.Err() != nil {
			c.mu.Unlock()
			return c.partial(rs, ctx.Err())
		}
		b := c.claimLocalLocked(rs, now)
		c.mu.Unlock()

		if b == nil {
			select {
			case <-ctx.Done():
			case <-rs.completeCh:
			case <-ticker.C:
			}
			continue
		}
		if localRun == nil {
			localRun = newWorker()
		}
		if err := c.runBlockLocally(ctx, rs, b, &localRun, newWorker); err != nil {
			return c.partial(rs, err)
		}
	}
}

// claimLocalLocked picks a pending block for coordinator-local execution:
// immediately when no live worker exists, otherwise only after the block
// has sat unleased for LocalDelay — workers get first refusal.
func (c *Coordinator) claimLocalLocked(rs *runState, now time.Time) *block {
	if len(c.seen) < c.opts.MinWorkers {
		return nil
	}
	noWorkers := c.liveWorkersLocked(now) == 0
	for _, b := range rs.blocks {
		if b.remaining == 0 || b.lease != nil {
			continue
		}
		if noWorkers || now.Sub(b.pendingSince) >= c.opts.LocalDelay {
			b.epoch++
			b.lease = &lease{worker: "local", epoch: b.epoch, deadline: now.Add(24 * time.Hour)}
			if b.grantedAt.IsZero() {
				b.grantedAt = now
			}
			return b
		}
	}
	return nil
}

// runBlockLocally executes a claimed block's undone shards on the
// coordinator's own runner, feeding each tally through the same idempotent
// accept path as a remote submission. A panicking shard is retried once on
// a fresh runner (mirroring the engine's retry contract); a second panic
// fails the run with a *mc.ShardFault.
func (c *Coordinator) runBlockLocally(ctx context.Context, rs *runState, b *block, run *mc.ShardRunner, newWorker func() mc.ShardRunner) error {
	for i := b.start; i < b.end; i++ {
		c.mu.Lock()
		skip := rs.done[i]
		c.mu.Unlock()
		if skip {
			continue
		}
		if ctx.Err() != nil {
			c.releaseBlock(rs, b)
			return nil // the RunTally loop surfaces the cancellation
		}
		sh := rs.shards[i]
		t, fault := mc.RunShardIsolated(*run, sh, 1)
		if fault != nil {
			*run = newWorker() // the panic may have corrupted runner state
			t, fault = mc.RunShardIsolated(*run, sh, 2)
		}
		if fault != nil {
			c.releaseBlock(rs, b)
			return fault
		}
		localShards.Inc()
		c.mu.Lock()
		c.stats.LocalShards++
		_, err := c.acceptLocked(rs, ShardTally{Index: i, Seed: sh.Seed, Shots: t.Shots, Errors: t.Errors})
		c.mu.Unlock()
		if err != nil {
			return err
		}
	}
	runlog.L().Info(evLocalShards, "run", rs.key.Run, "start", b.start, "end", b.end)
	c.releaseBlock(rs, b)
	return nil
}

func (c *Coordinator) releaseBlock(rs *runState, b *block) {
	c.mu.Lock()
	if b.lease != nil && b.lease.worker == "local" {
		b.lease = nil
		b.pendingSince = time.Now()
	}
	c.mu.Unlock()
}

// partial folds what completed and wraps the cause in the engine's
// *mc.PartialError, so the CLI's interrupt/resume path treats a fabric run
// exactly like a local one.
func (c *Coordinator) partial(rs *runState, cause error) (mc.Tally, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total mc.Tally
	completed := make([]int, 0, len(rs.done))
	var shotsDone int64
	for i, ok := range rs.done {
		if ok {
			completed = append(completed, i)
			shotsDone += int64(rs.shards[i].Shots)
			total.Add(rs.tallies[i])
		}
	}
	sort.Ints(completed)
	return total, &mc.PartialError{Cause: cause, Completed: completed, Shards: len(rs.shards), ShotsDone: shotsDone}
}
