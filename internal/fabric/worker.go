// Worker side of the fabric: the mc.Remote that leases shard ranges from
// the coordinator, executes them on locally built shard runners, submits
// the tallies, and blocks until the coordinator reports the run's merged
// result — keeping the worker's experiment control flow in lockstep with
// the coordinator's.
package fabric

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hetarch/internal/mc"
	"hetarch/internal/obs/runlog"
)

// WorkerEngine is a worker process's (or goroutine's) Remote. It owns its
// own run-sequence counter, so installing it via mc.WithRemote numbers the
// replayed experiment's runs exactly like the coordinator's.
type WorkerEngine struct {
	ID     string
	Client *Client
	// Poll is the wait between lease attempts when nothing is grantable
	// (default DefaultPoll).
	Poll time.Duration
	// Draining is set by the SIGTERM handler: the engine finishes and
	// submits its current lease, then stops taking new ones and waits only
	// for the run results it still needs to stay in lockstep.
	Draining atomic.Bool

	runSeq atomic.Int64
}

// NewWorkerEngine builds a worker Remote with the given identity.
func NewWorkerEngine(id string, client *Client) *WorkerEngine {
	return &WorkerEngine{ID: id, Client: client, Poll: DefaultPoll}
}

// RunTally implements mc.Remote for the worker role. The worker derives
// the run key from its own sequence counter — identical to the
// coordinator's because both replay the same control flow — then loops:
// lease a range, execute it (heartbeating), submit, until the coordinator
// reports the run done and hands back the merged tally.
func (w *WorkerEngine) RunTally(ctx context.Context, cfg mc.Config, newWorker func() mc.ShardRunner) (mc.Tally, error) {
	key := mc.RunKey{Run: int(w.runSeq.Add(1)) - 1, Shots: cfg.Shots, Seed: cfg.Seed, ShardSize: cfg.ShardSizeOrDefault()}
	shards := cfg.Shards()
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	var run mc.ShardRunner
	for {
		if err := ctx.Err(); err != nil {
			return mc.Tally{}, &mc.PartialError{Cause: err, Shards: len(shards)}
		}
		resp, err := w.Client.Lease(ctx, LeaseRequest{Worker: w.ID, Key: key})
		if err != nil {
			// The coordinator is unreachable beyond the client's retry
			// budget. The worker cannot make progress on this run — surface
			// the error and let the caller decide (workerMain exits; the
			// coordinator completes the sweep locally).
			return mc.Tally{}, &mc.PartialError{Cause: err, Shards: len(shards)}
		}
		switch resp.Status {
		case StatusDone:
			return *resp.Tally, nil
		case StatusError:
			return mc.Tally{}, &mc.PartialError{Cause: &protocolError{msg: resp.ErrorMsg}, Shards: len(shards)}
		case StatusWait:
			select {
			case <-ctx.Done():
			case <-time.After(poll):
			}
			continue
		case StatusLease:
			// fall through to execution below
		default:
			return mc.Tally{}, &mc.PartialError{Cause: &protocolError{msg: "unknown lease status " + resp.Status}, Shards: len(shards)}
		}
		if w.Draining.Load() {
			// A drain raced the lease grant: give the range back by letting
			// the lease expire untouched, and keep polling for the merged
			// result only.
			select {
			case <-ctx.Done():
			case <-time.After(poll):
			}
			continue
		}
		if run == nil {
			run = newWorker()
		}
		w.executeLease(ctx, key, shards, resp, &run, newWorker)
	}
}

// executeLease runs the granted range shard by shard, heartbeating the
// lease from a side goroutine, and submits whatever prefix completed.
// A lost lease (expired and possibly re-granted elsewhere) abandons the
// remainder mid-range; the submission of the completed prefix is still
// correct because tally acceptance is idempotent per shard.
func (w *WorkerEngine) executeLease(ctx context.Context, key mc.RunKey, shards []mc.Shard, grant LeaseResponse, run *mc.ShardRunner, newWorker func() mc.ShardRunner) {
	ttl := time.Duration(grant.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	var lost atomic.Bool
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
			}
			resp, err := w.Client.Renew(hbCtx, RenewRequest{
				Worker: w.ID, Key: key, Epoch: grant.Epoch, Start: grant.Start, End: grant.End,
			})
			if err == nil && !resp.OK {
				runlog.L().Warn(evLeaseLost, "worker", w.ID, "run", key.Run, "start", grant.Start, "end", grant.End, "epoch", grant.Epoch)
				lost.Store(true)
				return
			}
		}
	}()

	var done []ShardTally
	for i := grant.Start; i < grant.End && i < len(shards); i++ {
		if ctx.Err() != nil || lost.Load() {
			break
		}
		sh := shards[i]
		t, fault := mc.RunShardIsolated(*run, sh, 1)
		if fault != nil {
			*run = newWorker()
			t, fault = mc.RunShardIsolated(*run, sh, 2)
		}
		if fault != nil {
			// A deterministic shard panic: leave the shard to the
			// coordinator (whose local execution will surface the fault to
			// the user) and abandon the rest of the range.
			break
		}
		done = append(done, ShardTally{Index: sh.Index, Seed: sh.Seed, Shots: t.Shots, Errors: t.Errors})
		// Drain request honored at a shard boundary: submit what finished.
		if w.Draining.Load() {
			break
		}
	}
	stopHB()
	hbWG.Wait()
	if len(done) == 0 {
		return
	}
	// Submit on a context that survives a SIGTERM-cancelled ctx briefly, so
	// a draining worker still ships its completed prefix.
	subCtx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		subCtx, cancel = context.WithTimeout(context.Background(), ttl)
		defer cancel()
	}
	w.Client.Tally(subCtx, TallyRequest{
		Worker: w.ID, Key: key, Epoch: grant.Epoch, Start: grant.Start, End: grant.End, Tallies: done,
	})
}
