// Worker-side HTTP client: every call to the coordinator goes through one
// post() path with a per-request timeout, bounded retries, and exponential
// backoff with deterministic jitter — the robustness half of the worker
// role, kept separate from the lease/execute loop in worker.go.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"hetarch/internal/obs/runlog"
)

// Client talks the fabric protocol to one coordinator.
type Client struct {
	base string // http://host:port
	hc   *http.Client

	// Retry policy (zero values mean the Default* constants).
	Retries     int
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// jitterSeed drives the deterministic backoff jitter; seq counts
	// requests so each retry sequence jitters differently but reproducibly.
	jitterSeed uint64
	seq        atomic.Uint64
	retries    atomic.Int64
}

// NewClient builds a client for the coordinator at addr (host:port). The
// jitter seed keeps backoff deterministic per worker: derive it from the
// job seed and the worker index so chaos suites replay identically.
// transport may be nil (http.DefaultTransport); chaos tests pass a
// chaos.NetInjector.
func NewClient(addr string, jitterSeed uint64, transport http.RoundTripper) *Client {
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &Client{
		base:        "http://" + addr,
		hc:          &http.Client{Timeout: DefaultTimeout, Transport: transport},
		Retries:     DefaultRetries,
		BackoffBase: DefaultBackoffBase,
		BackoffCap:  DefaultBackoffCap,
		jitterSeed:  jitterSeed,
	}
}

// backoff returns the pause before retry attempt (1-based): exponential
// from BackoffBase, capped at BackoffCap, with a deterministic jitter in
// [0.5, 1.0) of the raw delay derived from the client's seed and the
// request sequence number.
func (c *Client) backoff(attempt int, seq uint64) time.Duration {
	d := c.BackoffBase << (attempt - 1)
	if d > c.BackoffCap || d <= 0 {
		d = c.BackoffCap
	}
	frac := float64(splitmix64(c.jitterSeed+seq*0x9e3779b97f4a7c15+uint64(attempt))>>11) / float64(1<<53)
	return time.Duration(float64(d) * (0.5 + frac/2))
}

// post sends one JSON request with retries. Network errors and 5xx
// responses are retried with backoff; 4xx responses are protocol errors
// and fail immediately. A dead context stops the retry loop.
func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("fabric: marshal %s: %w", path, err)
	}
	seq := c.seq.Add(1)
	var last error
	for attempt := 1; attempt <= 1+c.Retries; attempt++ {
		if attempt > 1 {
			clientRetries.Inc()
			c.retries.Add(1)
			runlog.L().Info(evRetry, "path", path, "attempt", attempt, "err", fmt.Sprint(last))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.backoff(attempt-1, seq)):
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		last = c.once(ctx, path, body, out)
		if last == nil {
			return nil
		}
		var pe *protocolError
		if errors.As(last, &pe) {
			return last // 4xx: retrying cannot help
		}
	}
	return fmt.Errorf("fabric: %s failed after %d attempts: %w", path, 1+c.Retries, last)
}

// protocolError marks a non-retryable coordinator response (4xx).
type protocolError struct{ msg string }

func (e *protocolError) Error() string { return e.msg }

func (c *Client) once(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("server error: %s", resp.Status)
	}
	if resp.StatusCode >= 400 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &protocolError{msg: fmt.Sprintf("fabric: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decode %s response: %w", path, err)
	}
	return nil
}

// Job fetches the coordinator's job state, identifying this worker for
// liveness tracking.
func (c *Client) Job(ctx context.Context, worker string) (JobResponse, error) {
	// The job endpoint also accepts GET-style polling, but POST keeps every
	// call on the same retry path.
	var out JobResponse
	err := c.post(ctx, PathJob+"?worker="+worker, struct{}{}, &out)
	return out, err
}

// WaitJob polls until the coordinator serves a running job, the context
// dies, or the coordinator reports the job done.
func (c *Client) WaitJob(ctx context.Context, worker string, poll time.Duration) (JobResponse, error) {
	if poll <= 0 {
		poll = 10 * DefaultPoll
	}
	for {
		resp, err := c.Job(ctx, worker)
		if err == nil {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return JobResponse{}, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Lease requests a shard-range lease for one run.
func (c *Client) Lease(ctx context.Context, req LeaseRequest) (LeaseResponse, error) {
	var out LeaseResponse
	err := c.post(ctx, PathLease, req, &out)
	return out, err
}

// Renew heartbeats a held lease.
func (c *Client) Renew(ctx context.Context, req RenewRequest) (RenewResponse, error) {
	var out RenewResponse
	err := c.post(ctx, PathRenew, req, &out)
	return out, err
}

// Tally submits the completed shards of a leased range.
func (c *Client) Tally(ctx context.Context, req TallyRequest) (TallyResponse, error) {
	var out TallyResponse
	err := c.post(ctx, PathTally, req, &out)
	return out, err
}

// RetriesDone reports how many request retries this client has performed
// (for the worker's ledger envelope).
func (c *Client) RetriesDone() int64 { return c.retries.Load() }
