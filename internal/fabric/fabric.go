// Package fabric is the fault-tolerant distributed sweep layer of the mc
// engine: a stdlib-only coordinator/worker protocol (net/http +
// encoding/json) that spreads a deterministic shard decomposition across
// machines without parallelism ever becoming a statistics knob.
//
// # Model
//
// One coordinator process runs the experiment's control flow. Every
// Tally-shaped Monte Carlo run reaches the coordinator's Remote hook (see
// mc.WithRemote) at the RunContext boundary, where the run's shard
// decomposition — a pure function of (shots, seed, shard size) — is fixed.
// The coordinator carves the decomposition into fixed shard-range blocks
// and leases them to workers; workers execute their leased shards on the
// ordinary mc shard runners and ship back per-shard tallies; the
// coordinator merges strictly in shard order. Because a completed shard's
// tally is a pure function of its stream seed, the pooled counts are
// bit-identical to a local run at any cluster size, any worker count, and
// under any fault schedule.
//
// Worker processes replay the same experiment control flow (same
// experiment, scale, seed — the job spec) with their own Remote hook:
// each RunContext call leases ranges, executes them, and then blocks until
// the coordinator reports the run's merged tally, so both sides make
// identical control-flow decisions and number their runs identically.
//
// # Robustness
//
// Leases are deadline-based: workers renew them by heartbeat, and a lease
// that expires (worker death, network partition) returns its range to the
// pending pool under a bumped epoch. Tally submission is idempotent —
// keyed by (run key, shard range, lease epoch), with duplicate or late
// deliveries dropped per shard, never double-counted. The worker's HTTP
// client uses request timeouts, bounded retries, and exponential backoff
// with deterministic jitter. The coordinator executes leftover shards
// locally when the worker pool drains, so a sweep always completes; and
// when an mc checkpoint is attached, every accepted tally is journaled
// before it is acknowledged, making the checkpoint file double as the
// coordinator's lease/recovery log: a killed coordinator resumes without
// re-running completed ranges.
package fabric

import (
	"time"

	"hetarch/internal/mc"
	"hetarch/internal/obs"
	"hetarch/internal/obs/runlog"
)

// Fabric telemetry: lease lifecycle counters, idempotency drops, client
// retries, and the grant-to-merge latency histogram per leased block.
var (
	leasesGranted   = obs.C("fabric.leases_granted")
	leasesExpired   = obs.C("fabric.leases_expired")
	tallyDupsDrop   = obs.C("fabric.tally_dups_dropped")
	clientRetries   = obs.C("fabric.retries")
	localShards     = obs.C("fabric.local_shards")
	tallyAccepted   = obs.C("fabric.tallies_accepted")
	leaseLatency    = obs.H("fabric.lease_latency_ns")
	workersLiveGage = obs.G("fabric.workers_live")
)

// Structured-log events (no-ops until the CLI installs a run logger).
var (
	evListen       = runlog.Event("fabric.coordinator_listen")
	evJobDone      = runlog.Event("fabric.job_done")
	evLeaseExpired = runlog.Event("fabric.lease_expired")
	evTallyDropped = runlog.Event("fabric.tally_dropped")
	evLocalShards  = runlog.Event("fabric.local_takeover")
	evWorkerSeen   = runlog.Event("fabric.worker_seen")
	evWorkerStart  = runlog.Event("fabric.worker_start")
	evWorkerDone   = runlog.Event("fabric.worker_done")
	evRetry        = runlog.Event("fabric.retry")
	evLeaseLost    = runlog.Event("fabric.lease_lost")
	evMismatch     = runlog.Event("fabric.decomposition_mismatch")
)

// Protocol constants. The path prefix is versioned so a future protocol
// revision can coexist with v1 handlers during a rolling upgrade.
const (
	PathJob   = "/fabric/v1/job"
	PathLease = "/fabric/v1/lease"
	PathRenew = "/fabric/v1/renew"
	PathTally = "/fabric/v1/tally"
)

// Defaults for the lease state machine and the worker client. Tests dial
// these down; production runs keep them.
const (
	DefaultLeaseTTL    = 3 * time.Second
	DefaultLeaseShards = 4
	DefaultLocalDelay  = 500 * time.Millisecond
	DefaultPoll        = 25 * time.Millisecond
	DefaultTimeout     = 5 * time.Second
	DefaultRetries     = 5
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffCap  = 2 * time.Second
)

// JobSpec is what a worker needs to replay the coordinator's experiment
// control flow exactly: the experiment, its scale, and the seeds. Workers
// derive every shard decomposition locally from it, so the wire protocol
// never carries per-shard seeds — only index ranges.
type JobSpec struct {
	RunID      string `json:"run_id"`
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"` // "quick" or "full"
	Seed       int64  `json:"seed"`
	Shots      int    `json:"shots,omitempty"` // CLI -shots override; 0 = scale default
}

// Job states served at PathJob.
const (
	JobRunning = "running"
	JobDone    = "done"
)

// JobResponse announces the job to polling workers.
type JobResponse struct {
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`
}

// LeaseRequest asks for a shard-range lease on one run. Key is the
// engine's run identity — the worker derives it from its own run-sequence
// counter and the run's config, and the coordinator refuses a key whose
// decomposition it does not recognize (a config drift between processes).
type LeaseRequest struct {
	Worker string    `json:"worker"`
	Key    mc.RunKey `json:"key"`
}

// Lease statuses.
const (
	StatusLease = "lease" // a range was granted
	StatusWait  = "wait"  // nothing to grant now; poll again
	StatusDone  = "done"  // the run is fully merged; Tally carries the pooled result
	StatusError = "error"
)

// LeaseResponse grants a shard range [Start, End) under a lease epoch, or
// reports the run's state.
type LeaseResponse struct {
	Status   string    `json:"status"`
	Epoch    int       `json:"epoch,omitempty"`
	Start    int       `json:"start,omitempty"`
	End      int       `json:"end,omitempty"`
	TTLMs    int64     `json:"ttl_ms,omitempty"`
	Tally    *mc.Tally `json:"tally,omitempty"`
	ErrorMsg string    `json:"error,omitempty"`
}

// RenewRequest is the heartbeat renewing a held lease.
type RenewRequest struct {
	Worker string    `json:"worker"`
	Key    mc.RunKey `json:"key"`
	Epoch  int       `json:"epoch"`
	Start  int       `json:"start"`
	End    int       `json:"end"`
}

// RenewResponse: OK=false means the lease was lost (expired and possibly
// re-granted); the worker abandons the range mid-flight.
type RenewResponse struct {
	OK bool `json:"ok"`
}

// ShardTally is one completed shard on the wire. Seed is the shard's
// stream seed, echoed back as a decomposition cross-check: the coordinator
// rejects a submission whose seeds disagree with its own decomposition.
type ShardTally struct {
	Index  int   `json:"index"`
	Seed   int64 `json:"seed"`
	Shots  int64 `json:"shots"`
	Errors int64 `json:"errors"`
}

// TallyRequest submits the tallies of a leased range. The (Key, Start,
// End, Epoch) tuple is the idempotency key: the coordinator accepts each
// shard at most once, dropping duplicates and late deliveries from expired
// epochs without double-counting.
type TallyRequest struct {
	Worker  string       `json:"worker"`
	Key     mc.RunKey    `json:"key"`
	Epoch   int          `json:"epoch"`
	Start   int          `json:"start"`
	End     int          `json:"end"`
	Tallies []ShardTally `json:"tallies"`
}

// TallyResponse reports how the submission landed.
type TallyResponse struct {
	Accepted   int    `json:"accepted"`
	Duplicates int    `json:"duplicates"`
	ErrorMsg   string `json:"error,omitempty"`
}

// Stats is the coordinator's cluster-composition and fault-counter
// summary, recorded into the run's ledger envelope.
type Stats struct {
	Addr             string `json:"addr,omitempty"`
	Workers          int    `json:"workers,omitempty"` // distinct worker IDs seen
	LeasesGranted    int64  `json:"leases_granted,omitempty"`
	LeasesExpired    int64  `json:"leases_expired,omitempty"`
	TalliesAccepted  int64  `json:"tallies_accepted,omitempty"`
	TallyDupsDropped int64  `json:"tally_dups_dropped,omitempty"`
	LocalShards      int64  `json:"local_shards,omitempty"`
	Retries          int64  `json:"retries,omitempty"` // client-side (worker role)
}

// AnnounceWorker logs a worker's start against the job it joined.
func AnnounceWorker(id string, spec JobSpec) {
	runlog.L().Info(evWorkerStart, "worker", id, "job", spec.RunID,
		"experiment", spec.Experiment, "scale", spec.Scale, "seed", spec.Seed)
}

// AnnounceWorkerDone logs a worker's exit from the sweep.
func AnnounceWorkerDone(id string, err error) {
	if err != nil {
		runlog.L().Warn(evWorkerDone, "worker", id, "error", err.Error())
		return
	}
	runlog.L().Info(evWorkerDone, "worker", id)
}

// splitmix64 is the engine's stream splitter (see mc.StreamSeed), reused
// for deterministic backoff jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
