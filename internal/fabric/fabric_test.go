package fabric

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetarch/internal/mc"
	"hetarch/internal/mc/chaos"
	"hetarch/internal/mc/checkpoint"
)

// testRuns is the synthetic experiment control flow: a fixed sequence of
// Tally-shaped runs that both the coordinator and every worker replay.
// Small shard sizes force multi-block decompositions at CI-scale budgets.
func testRuns(seed int64) []mc.Config {
	return []mc.Config{
		{Shots: 500, Seed: seed, ShardSize: 16, Workers: 2},
		{Shots: 300, Seed: seed + 7, ShardSize: 16, Workers: 2},
		{Shots: 130, Seed: seed - 3, ShardSize: 16, Workers: 2},
	}
}

// newRunner is the worker factory shared by every role: a deterministic
// binomial sampler, so any correct execution of a shard produces the same
// tally.
func newRunner(execs *atomic.Int64) func() mc.ShardRunner {
	return func() mc.ShardRunner {
		return func(sh mc.Shard) mc.Tally {
			if execs != nil {
				execs.Add(1)
			}
			rng := sh.RNG()
			var errs int64
			for i := 0; i < sh.Shots; i++ {
				if rng.Float64() < 0.1 {
					errs++
				}
			}
			return mc.Tally{Shots: int64(sh.Shots), Errors: errs}
		}
	}
}

// localResults executes the control flow without any fabric — the ground
// truth every distributed variant must match bit-for-bit.
func localResults(t *testing.T, seed int64) []mc.Tally {
	t.Helper()
	var out []mc.Tally
	for _, cfg := range testRuns(seed) {
		tally, err := mc.RunContext(context.Background(), cfg, newRunner(nil))
		if err != nil {
			t.Fatalf("local run: %v", err)
		}
		out = append(out, tally)
	}
	return out
}

// testOpts returns coordinator options dialed down for fast tests.
func testOpts(spec JobSpec) CoordinatorOptions {
	return CoordinatorOptions{
		Addr:        "127.0.0.1:0",
		Spec:        spec,
		LeaseTTL:    300 * time.Millisecond,
		LeaseShards: 2,
		LocalDelay:  150 * time.Millisecond,
		Poll:        5 * time.Millisecond,
	}
}

// startWorker runs the control flow through a WorkerEngine in a goroutine,
// returning a channel with its per-run results (nil on error/death).
func startWorker(ctx context.Context, id string, seed int64, client *Client, execs *atomic.Int64) <-chan []mc.Tally {
	out := make(chan []mc.Tally, 1)
	go func() {
		eng := NewWorkerEngine(id, client)
		eng.Poll = 5 * time.Millisecond
		wctx := mc.WithRemote(ctx, eng)
		var got []mc.Tally
		for _, cfg := range testRuns(seed) {
			tally, err := mc.RunContext(wctx, cfg, newRunner(execs))
			if err != nil {
				out <- nil
				return
			}
			got = append(got, tally)
		}
		out <- got
	}()
	return out
}

// coordinate runs the control flow through a coordinator, returning its
// per-run results.
func coordinate(ctx context.Context, t *testing.T, coord *Coordinator, seed int64, execs *atomic.Int64) []mc.Tally {
	t.Helper()
	cctx := mc.WithRemote(ctx, coord)
	var got []mc.Tally
	for _, cfg := range testRuns(seed) {
		tally, err := mc.RunContext(cctx, cfg, newRunner(execs))
		if err != nil {
			t.Fatalf("coordinator run: %v", err)
		}
		got = append(got, tally)
	}
	return got
}

// waitWorkers blocks until the coordinator has seen n distinct workers —
// without it, a test's control flow can finish locally before the worker
// goroutines ever make contact (the empty-pool takeover is immediate).
func waitWorkers(t *testing.T, coord *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Workers < n {
		if time.Now().After(deadline) {
			t.Fatalf("workers never connected: %d/%d", coord.Stats().Workers, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func assertTallies(t *testing.T, label string, got, want []mc.Tally) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d runs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: run %d tally %+v != local %+v", label, i, got[i], want[i])
		}
	}
}

// TestFabricBitIdentical: coordinator + 2 healthy workers produce tallies
// bit-identical to a local run, and the workers' lockstep replay observes
// the same merged tallies.
func TestFabricBitIdentical(t *testing.T) {
	const seed = 42
	want := localResults(t, seed)

	coord, err := StartCoordinator(testOpts(JobSpec{RunID: "t-bitident", Experiment: "test", Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown(time.Second)

	ctx := context.Background()
	w1 := startWorker(ctx, "w1", seed, NewClient(coord.Addr(), 1, nil), nil)
	w2 := startWorker(ctx, "w2", seed, NewClient(coord.Addr(), 2, nil), nil)
	waitWorkers(t, coord, 2)

	got := coordinate(ctx, t, coord, seed, nil)
	assertTallies(t, "coordinator", got, want)
	assertTallies(t, "worker w1", <-w1, want)
	assertTallies(t, "worker w2", <-w2, want)

	st := coord.Stats()
	if st.Workers != 2 {
		t.Errorf("stats workers = %d, want 2", st.Workers)
	}
	if st.TalliesAccepted+st.LocalShards == 0 {
		t.Error("no tallies accepted and no local shards: nothing ran?")
	}
}

// TestFabricNoWorkers: with an empty worker pool the coordinator degrades
// to a plain local run — graceful degradation's limit case.
func TestFabricNoWorkers(t *testing.T) {
	const seed = 7
	want := localResults(t, seed)
	coord, err := StartCoordinator(testOpts(JobSpec{RunID: "t-noworkers", Experiment: "test", Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown(time.Second)
	got := coordinate(context.Background(), t, coord, seed, nil)
	assertTallies(t, "coordinator", got, want)
	if st := coord.Stats(); st.LocalShards == 0 {
		t.Error("expected local shard execution with no workers")
	}
}

// TestFabricMinWorkersBarrier: with MinWorkers set, the coordinator must
// not fall back to local execution before that many workers have joined —
// a late-starting worker still gets leases on a sweep that would complete
// locally in milliseconds — and a cancelled context aborts a coordinator
// stuck waiting on a barrier no worker ever satisfies.
func TestFabricMinWorkersBarrier(t *testing.T) {
	const seed = 11
	want := localResults(t, seed)

	opts := testOpts(JobSpec{RunID: "t-barrier", Experiment: "test", Seed: seed})
	opts.MinWorkers = 1
	coord, err := StartCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown(time.Second)

	// The worker joins only after a delay that a barrier-less coordinator
	// would have used to finish the whole sweep locally.
	var workerExecs atomic.Int64
	workerDone := make(chan (<-chan []mc.Tally), 1)
	go func() {
		time.Sleep(250 * time.Millisecond)
		client := NewClient(coord.Addr(), 1, nil)
		workerDone <- startWorker(context.Background(), "w-late", seed, client, &workerExecs)
	}()

	got := coordinate(context.Background(), t, coord, seed, nil)
	assertTallies(t, "coordinator", got, want)
	assertTallies(t, "late worker", <-<-workerDone, want)
	if workerExecs.Load() == 0 {
		t.Error("barrier did not hold: the late worker executed no shards")
	}

	// And an unsatisfied barrier must not outlive the context.
	opts = testOpts(JobSpec{RunID: "t-barrier-stuck", Experiment: "test", Seed: seed})
	opts.MinWorkers = 1
	stuck, err := StartCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Shutdown(time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_, err = stuck.RunTally(ctx, testRuns(seed)[0], newRunner(nil))
	var pe *mc.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("barrier-stuck coordinator returned %v, want *mc.PartialError", err)
	}
}

// TestChaosFabricWorkerDeathAndPartition is the issue's headline schedule:
// one worker dies mid-sweep (permanent transport failure), another rides
// out a network partition; the merged result still matches the local run
// bit-for-bit and the lease machinery shows the expected fault handling.
func TestChaosFabricWorkerDeathAndPartition(t *testing.T) {
	const seed = 99
	want := localResults(t, seed)

	coord, err := StartCoordinator(testOpts(JobSpec{RunID: "t-chaos", Experiment: "test", Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown(time.Second)

	ctx := context.Background()
	// w1 goes silent after its 6th request: mid-sweep death. Its leased
	// ranges expire and are re-granted.
	killed := chaos.NewNet(nil).KillWorkerAfter(6)
	ck := NewClient(coord.Addr(), 1, killed)
	ck.Retries = 1
	ck.BackoffBase = 5 * time.Millisecond
	w1 := startWorker(ctx, "w1", seed, ck, nil)

	// w2 loses requests 4..9 to a partition, then heals; its client's
	// retry/backoff and the lease TTL absorb the outage.
	parted := chaos.NewNet(nil).PartitionFor(4, 6)
	cp := NewClient(coord.Addr(), 2, parted)
	cp.Retries = 8
	cp.BackoffBase = 5 * time.Millisecond
	cp.BackoffCap = 50 * time.Millisecond
	w2 := startWorker(ctx, "w2", seed, cp, nil)
	waitWorkers(t, coord, 2)

	got := coordinate(ctx, t, coord, seed, nil)
	assertTallies(t, "coordinator", got, want)
	if res := <-w2; res != nil {
		// The partitioned worker survived: it must have seen identical
		// merged tallies.
		assertTallies(t, "worker w2", res, want)
	}
	<-w1 // the killed worker errors out; only reap the channel

	if killed.Drops() == 0 {
		t.Error("kill schedule never fired")
	}
	if parted.Drops() == 0 {
		t.Error("partition schedule never fired")
	}
	if st := coord.Stats(); st.Retries != 0 {
		t.Errorf("coordinator-side retries = %d, want 0 (client metric)", st.Retries)
	}
}

// TestChaosFabricDuplicateDelivery: a duplicated tally submission must be
// dropped by the idempotency layer, never double-counted.
func TestChaosFabricDuplicateDelivery(t *testing.T) {
	const seed = 5
	want := localResults(t, seed)

	coord, err := StartCoordinator(testOpts(JobSpec{RunID: "t-dup", Experiment: "test", Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown(time.Second)

	ctx := context.Background()
	// Duplicate every tally submission the worker ever makes.
	dup := chaos.NewNet(nil)
	for n := 1; n <= 200; n++ {
		dup.DuplicateDelivery(PathTally, n)
	}
	cl := NewClient(coord.Addr(), 3, dup)
	w := startWorker(ctx, "w", seed, cl, nil)
	waitWorkers(t, coord, 1)

	got := coordinate(ctx, t, coord, seed, nil)
	assertTallies(t, "coordinator", got, want)
	assertTallies(t, "worker", <-w, want)

	if dup.Dups() == 0 {
		t.Fatal("duplicate schedule never fired")
	}
	if st := coord.Stats(); st.TallyDupsDropped == 0 {
		t.Errorf("tally_dups_dropped = 0 with %d duplicated deliveries", dup.Dups())
	}
}

// TestChaosFabricDropAndDelay: dropped requests are retried with backoff
// and a delayed response does not corrupt the merge.
func TestChaosFabricDropAndDelay(t *testing.T) {
	const seed = 11
	want := localResults(t, seed)

	coord, err := StartCoordinator(testOpts(JobSpec{RunID: "t-dropdelay", Experiment: "test", Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown(time.Second)

	ctx := context.Background()
	inj := chaos.NewNet(nil).
		DropRequest(PathLease, 2).
		DropRequest(PathTally, 5).
		DelayResponse(PathRenew, 3, 30*time.Millisecond)
	cl := NewClient(coord.Addr(), 4, inj)
	cl.Retries = 6
	cl.BackoffBase = 5 * time.Millisecond
	w := startWorker(ctx, "w", seed, cl, nil)
	waitWorkers(t, coord, 1)

	got := coordinate(ctx, t, coord, seed, nil)
	assertTallies(t, "coordinator", got, want)
	assertTallies(t, "worker", <-w, want)
	if cl.RetriesDone() == 0 {
		t.Error("dropped requests never produced a retry")
	}
}

// TestFabricCoordinatorResume: a coordinator killed mid-sweep resumes from
// the checkpoint lease log without re-running completed ranges, and the
// final tallies stay bit-identical.
func TestFabricCoordinatorResume(t *testing.T) {
	const seed = 21
	want := localResults(t, seed)
	ckptPath := filepath.Join(t.TempDir(), "fabric.ckpt")
	meta := checkpoint.NewMeta("test", "test", "", seed, 0)

	// Phase 1: run the first sub-run under a coordinator whose context is
	// cancelled mid-run, with the checkpoint attached.
	cp1, err := checkpoint.Open(ckptPath, meta)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts(JobSpec{RunID: "t-resume", Experiment: "test", Seed: seed})
	opts.Checkpoint = cp1
	coord1, err := StartCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	var phase1Execs atomic.Int64
	cancelAfter := newRunner(&phase1Execs)
	// Cancel after 10 shard executions: mid-run for the 32-shard first run.
	countingRunner := func() mc.ShardRunner {
		inner := cancelAfter()
		return func(sh mc.Shard) mc.Tally {
			t := inner(sh)
			if phase1Execs.Load() >= 10 {
				cancel1()
			}
			return t
		}
	}
	_, err = mc.RunContext(mc.WithRemote(ctx1, coord1), testRuns(seed)[0], countingRunner)
	var pe *mc.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("phase 1: got %v, want *mc.PartialError", err)
	}
	if len(pe.Completed) == 0 || len(pe.Completed) == pe.Shards {
		t.Fatalf("phase 1: completed %d/%d shards, want a strict partial", len(pe.Completed), pe.Shards)
	}
	coord1.Shutdown(0)
	cp1.Close()
	cancel1()

	// Phase 2: a fresh coordinator (new process incarnation) adopts the
	// checkpoint and finishes the whole control flow with one worker.
	cp2, err := checkpoint.Open(ckptPath, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	opts2 := testOpts(JobSpec{RunID: "t-resume-2", Experiment: "test", Seed: seed})
	opts2.Checkpoint = cp2
	coord2, err := StartCoordinator(opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Shutdown(time.Second)

	var phase2Execs atomic.Int64
	ctx := context.Background()
	w := startWorker(ctx, "w", seed, NewClient(coord2.Addr(), 9, nil), &phase2Execs)

	cctx := mc.WithRemote(ctx, coord2)
	var got []mc.Tally
	for _, cfg := range testRuns(seed) {
		tally, err := mc.RunContext(cctx, cfg, newRunner(&phase2Execs))
		if err != nil {
			t.Fatalf("resumed coordinator run: %v", err)
		}
		got = append(got, tally)
	}
	assertTallies(t, "resumed coordinator", got, want)
	assertTallies(t, "worker", <-w, want)

	// The resumed phase must not have re-executed the shards the first
	// incarnation checkpointed: executions across coordinator AND worker
	// stay below the full decomposition.
	totalShards := 0
	for _, cfg := range testRuns(seed) {
		totalShards += len(cfg.Shards())
	}
	if int(phase2Execs.Load()) >= totalShards {
		t.Errorf("resume re-executed everything: %d executions, %d total shards (checkpoint prefill broken)",
			phase2Execs.Load(), totalShards)
	}
}

// TestFabricWorkerDrain: a draining worker submits its completed prefix
// and stops taking leases; the coordinator finishes the sweep alone.
func TestFabricWorkerDrain(t *testing.T) {
	const seed = 33
	want := localResults(t, seed)

	coord, err := StartCoordinator(testOpts(JobSpec{RunID: "t-drain", Experiment: "test", Seed: seed}))
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Shutdown(time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := NewWorkerEngine("w", NewClient(coord.Addr(), 6, nil))
	eng.Poll = 5 * time.Millisecond

	var once sync.Once
	drainAfter := func() mc.ShardRunner {
		inner := newRunner(nil)()
		n := 0
		return func(sh mc.Shard) mc.Tally {
			t := inner(sh)
			n++
			if n >= 3 {
				// SIGTERM semantics: finish the current shard, then drain.
				once.Do(func() {
					eng.Draining.Store(true)
					cancel()
				})
			}
			return t
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wctx := mc.WithRemote(ctx, eng)
		for _, cfg := range testRuns(seed) {
			if _, err := mc.RunContext(wctx, cfg, drainAfter); err != nil {
				return // drained out: clean worker exit
			}
		}
	}()

	got := coordinate(context.Background(), t, coord, seed, nil)
	assertTallies(t, "coordinator", got, want)
	<-done
}
