module hetarch

go 1.22
