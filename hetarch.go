// Package hetarch is a toolbox for designing heterogeneous superconducting
// quantum microarchitectures, reproducing "HetArch: Heterogeneous
// Microarchitectures for Superconducting Quantum Systems" (MICRO '23).
//
// The library follows the paper's three-layer hierarchy:
//
//   - Devices (NewFixedFrequencyQubit, NewMultimodeResonator3D, …) are the
//     physical elements, characterized by coherence times, gate sets,
//     connectivity, control overhead and footprint (Table 1).
//   - Standard cells (NewRegister, NewParCheck, NewSeqOp, NewUSC) assemble
//     devices under the design rules DR1–DR4 and are characterized once by
//     exact density-matrix simulation (Table 2).
//   - Modules (DistillationModule, SurfaceMemory, UECModule, CodeTeleport)
//     execute quantum subroutines and are evaluated by composing the cell
//     characterizations with fast stabilizer Monte Carlo and event-driven
//     simulation.
//
// This root package is the public facade: it re-exports the stable API of
// the internal packages so applications depend only on module path
// "hetarch". See the examples directory for runnable entry points and
// cmd/hetarch for the experiment harness that regenerates every table and
// figure in the paper's evaluation section.
package hetarch

import (
	"context"
	"math/rand"

	"hetarch/internal/cell"
	"hetarch/internal/codetelep"
	"hetarch/internal/core"
	"hetarch/internal/decoder"
	"hetarch/internal/device"
	"hetarch/internal/distill"
	"hetarch/internal/dse"
	dsecache "hetarch/internal/dse/cache"
	"hetarch/internal/pauli"
	"hetarch/internal/qec"
	"hetarch/internal/statevec"
	"hetarch/internal/surface"
	"hetarch/internal/uec"
)

// Device layer (Table 1).

// Device is a physical quantum device model.
type Device = device.Device

// DeviceKind classifies devices as compute or storage.
type DeviceKind = device.Kind

// Device kinds.
const (
	Compute = device.Compute
	Storage = device.Storage
)

// DeviceCatalog returns the paper's Table-1 device catalog.
func DeviceCatalog() []*Device { return device.Catalog() }

// NewFixedFrequencyQubit returns the planar transmon entry.
func NewFixedFrequencyQubit() *Device { return device.FixedFrequencyQubit() }

// NewFluxTunableQubit returns the fluxonium-style entry.
func NewFluxTunableQubit() *Device { return device.FluxTunableQubit() }

// NewMemory3D returns the ultra-high-coherence 3D memory entry.
func NewMemory3D() *Device { return device.Memory3D() }

// NewMultimodeResonator3D returns the 10-mode 3D resonator entry.
func NewMultimodeResonator3D() *Device { return device.MultimodeResonator3D() }

// NewFutureOnChipResonator returns the projected on-chip resonator entry.
func NewFutureOnChipResonator() *Device { return device.FutureOnChipResonator() }

// NewStandardCompute returns the Section-4 idealized compute device with
// T1 = T2 = tc microseconds.
func NewStandardCompute(tcMicros float64) *Device { return device.StandardCompute(tcMicros) }

// NewStandardComputeNoReadout returns the idealized compute device without
// readout circuitry.
func NewStandardComputeNoReadout(tcMicros float64) *Device {
	return device.StandardComputeNoReadout(tcMicros)
}

// NewStandardStorage returns the idealized storage device with T1 = T2 = ts
// microseconds and the given mode count.
func NewStandardStorage(tsMicros float64, modes int) *Device {
	return device.StandardStorage(tsMicros, modes)
}

// Standard-cell layer (Table 2).

// Cell is a quantum standard cell: devices, couplings, reserved external
// links.
type Cell = cell.Cell

// CellViolation is one design-rule violation.
type CellViolation = cell.Violation

// Characterization is the channel-level abstraction of a simulated cell.
type Characterization = cell.Characterization

// NewRegister builds the Register standard cell.
func NewRegister(storage, compute *Device, externalLinks int) *Cell {
	return cell.NewRegister(storage, compute, externalLinks)
}

// NewParCheck builds the parity-check standard cell.
func NewParCheck(computeNoRO, computeRO *Device) *Cell {
	return cell.NewParCheck(computeNoRO, computeRO)
}

// NewSeqOp builds the sequential-operations standard cell.
func NewSeqOp(storage, compute func() *Device, parityRO *Device) *Cell {
	return cell.NewSeqOp(storage, compute, parityRO)
}

// NewUSC builds the universal stabilizer cell.
func NewUSC(storage, compute func() *Device, parityRO *Device) *Cell {
	return cell.NewUSC(storage, compute, parityRO)
}

// NewUSCExt builds the USC extension cell.
func NewUSCExt(storage, compute func() *Device, parityRO *Device) *Cell {
	return cell.NewUSCExt(storage, compute, parityRO)
}

// CheckDesignRules validates a cell against DR1–DR4.
func CheckDesignRules(c *Cell) []CellViolation { return cell.CheckDesignRules(c) }

// CharacterizeRegister density-matrix-simulates a Register cell.
func CharacterizeRegister(c *Cell) (*Characterization, error) { return cell.CharacterizeRegister(c) }

// CharacterizeParCheck density-matrix-simulates a ParCheck cell.
func CharacterizeParCheck(c *Cell) (*Characterization, error) { return cell.CharacterizeParCheck(c) }

// CharacterizeSeqOp density-matrix-simulates a SeqOp cell.
func CharacterizeSeqOp(c *Cell) (*Characterization, error) { return cell.CharacterizeSeqOp(c) }

// CharacterizeUSC density-matrix-simulates a USC cell.
func CharacterizeUSC(c *Cell) (*Characterization, error) { return cell.CharacterizeUSC(c) }

// Module layer and composition framework.

// Module is a node of the hardware hierarchy.
type Module = core.Module

// NewModule returns an empty module.
func NewModule(name string) *Module { return core.NewModule(name) }

// Characterizer memoizes cell characterizations across a design sweep.
type Characterizer = core.Characterizer

// NewCharacterizer returns an empty characterization cache.
func NewCharacterizer() *Characterizer { return core.NewCharacterizer() }

// CharacterizationStore is the persistence layer behind a Characterizer:
// in-memory by default, or a content-addressed on-disk cache via
// OpenCharacterizationCache.
type CharacterizationStore = core.CharacterizationStore

// NewCharacterizerWithStore returns a characterizer over the given store.
func NewCharacterizerWithStore(s CharacterizationStore) *Characterizer {
	return core.NewCharacterizerWithStore(s)
}

// OpenCharacterizationCache opens (creating if needed) a persistent
// characterization cache directory: one versioned JSON entry per distinct
// cell configuration, addressed by CharacterizationKey. Warm processes
// sharing the directory skip density-matrix simulation entirely.
func OpenCharacterizationCache(dir string) (CharacterizationStore, error) {
	return dsecache.Open(dir)
}

// CharacterizationKey returns the canonical content address of a cell's
// characterization: a hash of the cell's topology, every device parameter,
// and the characterization code version.
func CharacterizationKey(c *Cell) string { return dsecache.Key(c) }

// ErrorBudget composes independent module error contributions.
type ErrorBudget = core.ErrorBudget

// SweepParam is one swept design parameter.
type SweepParam = core.Param

// SweepPoint is one grid assignment.
type SweepPoint = core.Point

// SweepResult pairs a point with its metrics.
type SweepResult = core.Result

// Sweep evaluates the full factorial grid.
func Sweep(params []SweepParam, fn func(SweepPoint) map[string]float64) []SweepResult {
	return core.Sweep(params, fn)
}

// ParetoFront filters sweep results to the Pareto-optimal set.
func ParetoFront(results []SweepResult, minimize []string) []SweepResult {
	return core.ParetoFront(results, minimize)
}

// SweepPartialError reports a parallel sweep that stopped early; the
// results returned alongside it are the completed prefix of the grid.
type SweepPartialError = dse.PartialError

// SweepParallel evaluates the full factorial grid across worker goroutines
// (workers <= 0 means NumCPU) with bit-identical results at any worker
// count. On cancellation or an evaluator error it returns the longest
// completed prefix of the grid and a *SweepPartialError.
func SweepParallel(ctx context.Context, params []SweepParam, workers int, fn func(SweepPoint) (map[string]float64, error)) ([]SweepResult, error) {
	return dse.Sweep(ctx, params, dse.Config{Workers: workers}, fn)
}

// QEC codes.

// Code is a CSS stabilizer code.
type Code = qec.Code

// SteaneCode returns the [[7,1,3]] Steane code.
func SteaneCode() *Code { return qec.Steane() }

// ReedMullerCode returns the [[15,1,3]] quantum Reed–Muller code.
func ReedMullerCode() *Code { return qec.ReedMuller15() }

// TriColorCode returns the verified [[19,1,5]] triangular color code.
func TriColorCode() *Code { return qec.TriColor5() }

// SurfaceCode returns the rotated planar surface code of distance d.
func SurfaceCode(d int) *Code {
	c, _ := qec.Surface(d)
	return c
}

// Decoders.

// LookupDecoder is the exact minimum-weight syndrome-table decoder.
type LookupDecoder = decoder.Lookup

// NewLookupDecoder builds a lookup decoder for one error sector.
func NewLookupDecoder(n int, checkMasks []uint64) *LookupDecoder {
	return decoder.NewLookup(n, checkMasks)
}

// Entanglement distillation (Section 4.1).

// DistillationConfig parameterizes the distillation module simulation.
type DistillationConfig = distill.Config

// DistillationStats summarizes a distillation run.
type DistillationStats = distill.Stats

// DistillationModule is the event-driven distillation simulator.
type DistillationModule = distill.Module

// NewDistillationConfig returns the paper's baseline configuration.
func NewDistillationConfig(tsMillis float64, heterogeneous bool) DistillationConfig {
	return distill.DefaultConfig(tsMillis, heterogeneous)
}

// NewDistillationModule prepares a distillation simulation.
func NewDistillationModule(cfg DistillationConfig) *DistillationModule {
	return distill.NewModule(cfg)
}

// EntangledPair is a Bell-diagonal two-qubit state.
type EntangledPair = distill.Pair

// NewWernerPair returns the Werner state of the given fidelity.
func NewWernerPair(fidelity float64) EntangledPair { return distill.NewWernerPair(fidelity) }

// DEJMPS applies one distillation round to two pairs.
func DEJMPS(a, b EntangledPair, gateError float64) (EntangledPair, float64) {
	return distill.DEJMPS(a, b, gateError)
}

// Surface-code memory (Section 4.2.1).

// SurfaceMemoryParams configures a surface-code memory experiment.
type SurfaceMemoryParams = surface.Params

// SurfaceMemory is a compiled surface-code memory experiment.
type SurfaceMemory = surface.Experiment

// NewSurfaceMemoryParams returns the Section 4.2.1 baseline for distance d.
func NewSurfaceMemoryParams(d int) SurfaceMemoryParams { return surface.DefaultParams(d) }

// NewSurfaceMemory compiles a surface-code memory experiment.
func NewSurfaceMemory(p SurfaceMemoryParams) (*SurfaceMemory, error) { return surface.New(p) }

// Universal error correction (Section 4.2.2).

// UECParams configures a universal-error-correction experiment.
type UECParams = uec.Params

// UECModule is a compiled UEC memory experiment.
type UECModule = uec.Experiment

// NewUECParams returns the Section 4.2.2 baseline for a code.
func NewUECParams(code *Code, tsMillis float64, heterogeneous bool) UECParams {
	return uec.DefaultParams(code, tsMillis, heterogeneous)
}

// NewUECModule compiles a UEC experiment.
func NewUECModule(p UECParams) (*UECModule, error) { return uec.New(p) }

// UECPseudothreshold locates the module's gate-error break-even point,
// sampling each grid point on all cores (the fitted value is worker-count
// independent; see internal/mc).
func UECPseudothreshold(base UECParams, shots int, seed int64) (float64, bool) {
	return uec.Pseudothreshold(base, shots, seed, 0)
}

// Code teleportation (Section 4.3).

// CodeTeleportParams configures a CT-state preparation evaluation.
type CodeTeleportParams = codetelep.Params

// CodeTeleportResult is the composed CT error budget.
type CodeTeleportResult = codetelep.Result

// NewCodeTeleportParams returns the Section 4.3 setup for a code pair.
func NewCodeTeleportParams(a, b *Code, tsMillis float64, heterogeneous bool) CodeTeleportParams {
	return codetelep.DefaultParams(a, b, tsMillis, heterogeneous)
}

// CodeTeleport evaluates the CT module error model.
func CodeTeleport(p CodeTeleportParams) (*CodeTeleportResult, error) {
	return codetelep.Evaluate(p)
}

// Protocol-level code teleportation (Fig. 10).

// StabilizerTableau is an exact Aaronson–Gottesman stabilizer state.
type StabilizerTableau = pauli.Tableau

// CTLayout records the qubit indexing of a prepared CT state.
type CTLayout = codetelep.CTLayout

// PrepareCTState executes the noiseless six-step CT protocol between two
// CSS codes on a stabilizer tableau.
func PrepareCTState(a, b *Code, rng *rand.Rand) (*StabilizerTableau, *CTLayout, error) {
	return codetelep.PrepareCTState(a, b, rng)
}

// VerifyCTState checks that a prepared state carries both codes' stabilizers
// and the joint logical XX and ZZ operators of |Φ+⟩_AB.
func VerifyCTState(tb *StabilizerTableau, layout *CTLayout) error {
	return codetelep.VerifyCTState(tb, layout)
}

// Pure-state simulation tier.

// StateVector is a pure-state simulator for noiseless structural
// verification at sizes beyond the density-matrix tier (20+ qubits).
type StateVector = statevec.State

// NewStateVector returns |0…0⟩ over n qubits.
func NewStateVector(n int) *StateVector { return statevec.New(n) }

// NewCATState prepares the n-qubit GHZ (CAT) state.
func NewCATState(n int) *StateVector { return statevec.GHZ(n) }

// Multi-round UEC memory.

// UECMemory is an R-round serialized memory experiment on the universal
// error-correction module.
type UECMemory = uec.MemoryExperiment

// NewUECMemory compiles an R-round UEC memory experiment.
func NewUECMemory(p UECParams, rounds int) (*UECMemory, error) {
	return uec.NewMemory(p, rounds)
}

// BBPSSW applies one round of the Bennett et al. purification protocol
// (Werner-twirled; converges slower than DEJMPS).
func BBPSSW(a, b EntangledPair, gateError float64) (EntangledPair, float64) {
	return distill.BBPSSW(a, b, gateError)
}

// NewDistillationConfigFromCells derives a distillation configuration from
// Register and ParCheck characterizations — the cell layer feeding the
// module layer, as in the paper's simulation hierarchy.
func NewDistillationConfigFromCells(registerChar, parcheckChar *Characterization, heterogeneous bool) DistillationConfig {
	return distill.ConfigFromCells(registerChar, parcheckChar, heterogeneous)
}
