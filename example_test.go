package hetarch_test

import (
	"fmt"

	"hetarch"
)

// Build a Register standard cell from catalog-grade devices, check it
// against the design rules and characterize it exactly.
func ExampleNewRegister() {
	storage := hetarch.NewStandardStorage(12500, 10) // 12.5 ms, 10 modes
	compute := hetarch.NewStandardComputeNoReadout(500)
	register := hetarch.NewRegister(storage, compute, 2)

	violations := hetarch.CheckDesignRules(register)
	fmt.Println("violations:", len(violations))

	char, err := hetarch.CharacterizeRegister(register)
	if err != nil {
		panic(err)
	}
	load := char.MustOp("load")
	fmt.Printf("load: %.1f ns at fidelity > 0.9999: %v\n", load.Duration*1000, load.Fidelity > 0.9999)
	// Output:
	// violations: 0
	// load: 100.0 ns at fidelity > 0.9999: true
}

// One DEJMPS round on two Werner pairs improves their fidelity.
func ExampleDEJMPS() {
	pair := hetarch.NewWernerPair(0.9)
	out, pSuccess := hetarch.DEJMPS(pair, pair, 0)
	fmt.Printf("improved: %v, success probability > 0.8: %v\n",
		out.Fidelity() > 0.9, pSuccess > 0.8)
	// Output:
	// improved: true, success probability > 0.8: true
}

// The module hierarchy rolls up physical properties from the device layer.
func ExampleNewModule() {
	reg := hetarch.NewRegister(hetarch.NewStandardStorage(12500, 10),
		hetarch.NewStandardComputeNoReadout(500), 2)
	m := hetarch.NewModule("Memory").AddCell(reg)
	fmt.Printf("capacity=%d control=%d\n", m.QubitCapacity(), m.ControlOverhead())
	// Output:
	// capacity=11 control=2
}

// Stabilizer codes validate their own structure.
func ExampleSteaneCode() {
	code := hetarch.SteaneCode()
	fmt.Println(code.Name, code.N, code.Distance, code.Validate() == nil)
	// Output:
	// Steane 7 3 true
}
